"""Tests for trace-driven replay, including execution-vs-replay parity."""

import pytest

from repro.core.config import MachineConfig, OptimizationConfig, SimulationConfig
from repro.core.replay import replay, replay_many
from repro.machine.machine import KL1Machine
from repro.trace.buffer import TraceBuffer
from repro.trace.events import Area, Op
from repro.trace.synthetic import generate_aurora_trace, AuroraTraceConfig

SRC = """
nrev([], R) :- R = [].
nrev([X|Xs], R) :- nrev(Xs, T), app(T, [X], R).
app([], Ys, Z) :- Z = Ys.
app([X|Xs], Ys, Z) :- Z = [X|Z2], app(Xs, Ys, Z2).
main(R) :- nrev([1,2,3,4,5,6,7,8], R).
"""


def test_replay_default_config():
    trace = generate_aurora_trace(AuroraTraceConfig(n_pes=2, steps_per_pe=50))
    stats = replay(trace)
    assert stats.total_refs == len(trace)
    assert stats.bus_cycles_total > 0


def test_replay_many_matches_individual_replays():
    trace = generate_aurora_trace(AuroraTraceConfig(n_pes=2, steps_per_pe=50))
    configs = [
        SimulationConfig(opts=OptimizationConfig.all()),
        SimulationConfig(opts=OptimizationConfig.none()),
    ]
    many = replay_many(trace, configs)
    assert [s.bus_cycles_total for s in many] == [
        replay(trace, c).bus_cycles_total for c in configs
    ]


def test_replay_blocked_trace_raises():
    trace = TraceBuffer(n_pes=2)
    trace.append(0, Op.LR, Area.HEAP, 1 << 28)
    trace.append(1, Op.R, Area.HEAP, 1 << 28)  # conflicts while locked
    with pytest.raises(RuntimeError):
        replay(trace)


def test_execution_and_replay_agree_exactly():
    """The paper's execution-driven setup and our trace replay must
    produce identical protocol statistics on the same stream and config."""
    machine = KL1Machine(SRC, MachineConfig(n_pes=2, seed=3))
    result = machine.run("main(R)")
    assert result.stats is not None and result.trace is not None
    replayed = replay(result.trace, SimulationConfig())
    live = result.stats
    assert replayed.total_refs == live.total_refs
    assert replayed.bus_cycles_total == live.bus_cycles_total
    assert replayed.refs == live.refs
    assert replayed.hits == live.hits
    assert replayed.pattern_counts == live.pattern_counts
    assert replayed.dw_allocations == live.dw_allocations
    assert replayed.purges_dirty == live.purges_dirty
    assert replayed.lr_no_bus == live.lr_no_bus


def test_replay_against_different_geometry_differs():
    machine = KL1Machine(SRC, MachineConfig(n_pes=2, seed=3))
    result = machine.run("main(R)")
    from repro.core.config import CacheConfig

    small = replay(
        result.trace,
        SimulationConfig(cache=CacheConfig(block_words=4, n_sets=2, associativity=1)),
    )
    base = replay(result.trace, SimulationConfig())
    assert small.miss_ratio >= base.miss_ratio
