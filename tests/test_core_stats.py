"""Unit tests for SystemStats derivations."""

import pytest

from repro.core.config import SimulationConfig
from repro.core.stats import SystemStats
from repro.core.system import PIMCacheSystem
from repro.trace.events import AREA_BASE, Area, Op

HEAP = AREA_BASE[Area.HEAP]
GOAL = AREA_BASE[Area.GOAL]
INSTR = AREA_BASE[Area.INSTRUCTION]


def test_empty_stats_are_all_zero():
    stats = SystemStats(4)
    assert stats.total_refs == 0
    assert stats.miss_ratio == 0.0
    assert stats.bus_cycles_total == 0
    assert stats.lr_hit_ratio == 0.0
    assert stats.unlock_no_waiter_ratio == 0.0
    assert stats.total_cycles == 0


def test_ref_matrix_counts_software_ops():
    system = PIMCacheSystem(SimulationConfig(), 2)
    system.access(0, Op.DW, Area.HEAP, HEAP)
    system.access(0, Op.R, Area.INSTRUCTION, INSTR)
    system.access(1, Op.ER, Area.GOAL, GOAL)
    stats = system.stats
    assert stats.refs[Area.HEAP][Op.DW] == 1
    assert stats.refs[Area.INSTRUCTION][Op.R] == 1
    assert stats.refs[Area.GOAL][Op.ER] == 1
    assert stats.total_refs == 3
    assert stats.data_refs() == 2


def test_area_percentages_sum_to_100():
    system = PIMCacheSystem(SimulationConfig(), 2)
    for i in range(10):
        system.access(0, Op.R, Area.HEAP, HEAP + i)
        system.access(0, Op.R, Area.INSTRUCTION, INSTR + i)
    percentages = system.stats.area_ref_percentages()
    assert sum(percentages) == pytest.approx(100.0)
    assert percentages[Area.HEAP] == pytest.approx(50.0)


def test_op_percentages_group_optimized_commands():
    system = PIMCacheSystem(SimulationConfig(), 2)
    system.access(0, Op.R, Area.HEAP, HEAP)
    system.access(0, Op.ER, Area.GOAL, GOAL)
    system.access(0, Op.DW, Area.HEAP, HEAP + 4)
    system.access(0, Op.W, Area.HEAP, HEAP + 8)
    mix = system.stats.op_ref_percentages()
    assert mix["R"] == pytest.approx(50.0)  # R + ER
    assert mix["W"] == pytest.approx(50.0)  # W + DW
    assert mix["LR"] == 0.0


def test_heap_op_percentages_scoped_to_heap():
    system = PIMCacheSystem(SimulationConfig(), 2)
    system.access(0, Op.W, Area.HEAP, HEAP)
    system.access(0, Op.R, Area.GOAL, GOAL)
    heap_mix = system.stats.heap_op_percentages()
    assert heap_mix["W"] == pytest.approx(100.0)


def test_miss_ratio_by_area():
    system = PIMCacheSystem(SimulationConfig(), 1)
    system.access(0, Op.R, Area.HEAP, HEAP)  # miss
    system.access(0, Op.R, Area.HEAP, HEAP + 1)  # hit
    stats = system.stats
    assert stats.miss_ratio_area(Area.HEAP) == pytest.approx(0.5)
    assert stats.miss_ratio == pytest.approx(0.5)


def test_as_dict_round_trips_counts():
    system = PIMCacheSystem(SimulationConfig(), 2)
    system.access(0, Op.W, Area.HEAP, HEAP)
    system.access(1, Op.R, Area.HEAP, HEAP)
    snapshot = system.stats.as_dict()
    assert snapshot["total_refs"] == 2
    assert snapshot["refs"]["heap"]["W"] == 1
    assert snapshot["pattern_counts"]["c2c"] == 1
    assert snapshot["n_pes"] == 2


def test_repr_is_informative():
    stats = SystemStats(8)
    assert "n_pes=8" in repr(stats)
