"""The Section 3 write-policy ablation baselines.

The paper *argues* for (a) copy-back over write-through — logic
programs' high write ratio makes write-through traffic prohibitive
(Tick, [19]) — and (b) invalidation over broadcast update — KL1's
single-assignment data is shared by ~two goals, so updating sharers is
wasted work.  These tests pin the baselines' mechanics; the benchmark
harness asserts the traffic comparisons on real workloads.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import OptimizationConfig, SimulationConfig
from repro.core.states import BusPattern, CacheState
from repro.core.system import PIMCacheSystem
from repro.trace.events import AREA_BASE, Area, Op

HEAP = AREA_BASE[Area.HEAP]


def make_system(protocol, n_pes=4):
    return PIMCacheSystem(
        SimulationConfig(
            protocol=protocol,
            opts=OptimizationConfig.none(),
            track_data=True,
        ),
        n_pes,
    )


class TestWriteThrough:
    def test_every_write_uses_the_bus(self):
        system = make_system("write_through")
        system.access(0, Op.R, Area.HEAP, HEAP)
        for offset in range(4):
            system.access(0, Op.W, Area.HEAP, HEAP + offset, value=offset)
        assert system.stats.pattern_counts[BusPattern.WRITE_THROUGH] == 4
        # Each write also occupies the memory modules.
        assert system.stats.memory_busy_cycles >= 4 * 8

    def test_write_miss_does_not_allocate(self):
        system = make_system("write_through")
        system.access(0, Op.W, Area.HEAP, HEAP, value=1)
        assert system.line_state(0, HEAP) == CacheState.INV
        assert system.memory[HEAP] == 1

    def test_write_invalidates_sharers(self):
        system = make_system("write_through")
        system.access(0, Op.R, Area.HEAP, HEAP)
        system.access(1, Op.R, Area.HEAP, HEAP)
        system.access(0, Op.W, Area.HEAP, HEAP, value=5)
        assert system.line_state(1, HEAP) == CacheState.INV
        assert system.line_state(0, HEAP) == CacheState.EC
        _, _, value = system.access(1, Op.R, Area.HEAP, HEAP)
        assert value == 5
        system.check_invariants()

    def test_blocks_never_need_swap_out(self):
        system = make_system("write_through", n_pes=1)
        for offset in range(0, 64, 4):
            system.access(0, Op.R, Area.HEAP, HEAP + offset)
            system.access(0, Op.W, Area.HEAP, HEAP + offset, value=offset)
        assert system.stats.swap_outs == 0


class TestWriteUpdate:
    def test_write_patches_remote_copies_in_place(self):
        system = make_system("write_update")
        system.access(0, Op.R, Area.HEAP, HEAP)
        system.access(1, Op.R, Area.HEAP, HEAP)
        system.access(0, Op.W, Area.HEAP, HEAP, value=9)
        # The sharer keeps a (now updated) copy: its next read is a hit.
        bus_before = system.stats.bus_cycles_total
        cycles, _, value = system.access(1, Op.R, Area.HEAP, HEAP)
        assert cycles == 1
        assert value == 9
        assert system.stats.bus_cycles_total == bus_before
        system.check_invariants()

    def test_memory_always_current(self):
        system = make_system("write_update")
        system.access(2, Op.W, Area.HEAP, HEAP + 7, value=3)
        assert system.memory[HEAP + 7] == 3

    def test_update_pays_even_without_sharers(self):
        """The broadcast write costs the bus whether or not anyone
        listens — the waste the paper's invalidation choice avoids when
        sharing is low."""
        system = make_system("write_update", n_pes=1)
        system.access(0, Op.R, Area.HEAP, HEAP)
        before = system.stats.bus_cycles_total
        system.access(0, Op.W, Area.HEAP, HEAP, value=1)
        assert system.stats.bus_cycles_total > before


class TestAgainstCopyback:
    @staticmethod
    def _burst(protocol, op, rewrites=0):
        opts = OptimizationConfig.all() if op == Op.DW else OptimizationConfig.none()
        system = PIMCacheSystem(
            SimulationConfig(protocol=protocol, opts=opts, track_data=True), 2
        )
        for offset in range(256):
            system.access(0, op, Area.HEAP, HEAP + offset, value=offset)
        for _ in range(rewrites):
            for offset in range(256):
                system.access(0, Op.W, Area.HEAP, HEAP + offset, value=offset)
        return system.stats.bus_cycles_total

    def test_fresh_write_bursts_motivate_direct_write(self):
        """On pure fresh-structure creation, plain copy-back *loses* to
        write-through (fetch-on-write fetches garbage) — exactly the
        paper's motivation for DW — and copy-back + DW beats both."""
        copyback_plain = self._burst("pim", Op.W)
        write_through = self._burst("write_through", Op.W)
        copyback_dw = self._burst("pim", Op.DW)
        assert write_through < copyback_plain  # the DW-shaped hole
        assert copyback_dw < write_through  # DW closes it decisively
        assert copyback_dw == 0  # fresh allocation is bus-free

    def test_copyback_wins_once_data_is_rewritten(self):
        """With any rewrite locality, copy-back absorbs the writes in
        cache while write-through pays the bus per word — Tick's
        argument for copy-back under logic programming's write ratio."""
        copyback = self._burst("pim", Op.W, rewrites=3)
        through = self._burst("write_through", Op.W, rewrites=3)
        assert copyback < through

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2),
                st.sampled_from([Op.R, Op.W]),
                st.integers(0, 63),
                st.integers(0, 99),
            ),
            min_size=1,
            max_size=150,
        )
    )
    def test_all_policies_preserve_values(self, steps):
        """Value correctness is policy-independent."""
        shadows = {}
        for protocol in ("pim", "illinois", "write_through", "write_update"):
            system = make_system(protocol, n_pes=3)
            shadow = {}
            for pe, op, offset, value in steps:
                address = HEAP + offset
                _, _, observed = system.access(pe, op, Area.HEAP, address, value)
                if op == Op.W:
                    shadow[address] = value
                else:
                    assert observed == shadow.get(address, 0), protocol
            system.check_invariants()
