"""Model-checking the directory backend (repro.verify.model).

The BFS explores every interleaving with the home-node directory
resolving the transactions, the in-flight transient watcher validating
each micro-step against the table row, and the directory-vs-caches
agreement check running on every reached state.  The negative tests
corrupt one derived table row and demand the checker produce a
counterexample of the matching violation family — proof the directory
obligations are actually being checked, not vacuously true.
"""

import dataclasses

import pytest

import repro.core.interconnect as interconnect_module
from repro.core.protocol import protocol_names
from repro.core.protocol.directory import (
    DirRequest,
    DirRule,
    DirState,
    build_directory_spec,
)
from repro.verify import ModelCheckOptions, check_protocol

DIRECTORY_OPTIONS = ModelCheckOptions(interconnect="directory")


@pytest.mark.parametrize("name", protocol_names())
def test_every_protocol_is_clean_on_the_directory(name):
    result = check_protocol(name, DIRECTORY_OPTIONS)
    assert result.clean, result.counterexample
    assert result.complete
    assert result.options.interconnect == "directory"
    assert "directory interconnect" in result.render()
    assert result.as_dict()["interconnect"] == "directory"


def test_directory_state_enlarges_the_state_space():
    bus = check_protocol("pim", ModelCheckOptions())
    directory = check_protocol("pim", DIRECTORY_OPTIONS)
    assert directory.states > bus.states


def _corrupted_builder(mutate):
    """A ``build_directory_spec`` replacement with one row *mutate*\\ d."""

    def build(spec):
        real = build_directory_spec(spec)
        return dataclasses.replace(real, rows=mutate(dict(real.rows)))

    return build


def test_wrong_next_state_prediction_is_a_transient_violation(monkeypatch):
    def mutate(rows):
        rule = rows[(DirState.I, DirRequest.GETS)]
        # A read miss on an idle block grants the only copy: E, not S.
        rows[(DirState.I, DirRequest.GETS)] = DirRule(
            rule.transient, rule.actions, DirState.S, owner=rule.owner
        )
        return rows

    monkeypatch.setattr(
        interconnect_module, "build_directory_spec", _corrupted_builder(mutate)
    )
    result = check_protocol("pim", DIRECTORY_OPTIONS)
    assert not result.clean
    violation = result.counterexample.violation
    assert violation.invariant == "directory-transient"
    assert "row predicted S, completion is E" in violation.detail
    assert result.counterexample.steps  # a replayable counterexample


def test_missing_row_is_a_table_violation(monkeypatch):
    def mutate(rows):
        del rows[(DirState.I, DirRequest.GETS)]
        return rows

    monkeypatch.setattr(
        interconnect_module, "build_directory_spec", _corrupted_builder(mutate)
    )
    result = check_protocol("pim", DIRECTORY_OPTIONS)
    assert not result.clean
    violation = result.counterexample.violation
    assert violation.invariant == "directory-table"
    assert "no directory row" in violation.detail


def test_wrong_owner_prediction_is_caught(monkeypatch):
    def mutate(rows):
        rule = rows[(DirState.I, DirRequest.GETM)]
        # An exclusive grant makes the requester the owner, not nobody.
        rows[(DirState.I, DirRequest.GETM)] = DirRule(
            rule.transient, rule.actions, rule.next_state, owner="none"
        )
        return rows

    monkeypatch.setattr(
        interconnect_module, "build_directory_spec", _corrupted_builder(mutate)
    )
    result = check_protocol("pim", DIRECTORY_OPTIONS)
    assert not result.clean
    assert result.counterexample.violation.invariant == "directory-transient"
