"""Directory-table derivation (repro.core.protocol.directory).

Every registered cache protocol must derive a complete home-node table
(:func:`build_directory_spec`): the coverage matrix below is the
registered-but-uncovered guard — registering a new ``ProtocolSpec``
without a full directory derivation fails here, not in a fuzz run.
"""

import pytest

from repro.core.protocol import (
    build_directory_spec,
    get_protocol,
    protocol_names,
)
from repro.core.protocol.directory import (
    DirAction,
    DirectoryEntry,
    DirRequest,
    DirState,
)
from repro.core.protocol.spec import RemoteAction
from repro.core.states import CacheState

ALL_PROTOCOLS = list(protocol_names())


def _spec(name):
    return build_directory_spec(get_protocol(name))


# ---------------------------------------------------------------------------
# Coverage: every request the controller can issue has a row.


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_every_reachable_state_request_pair_has_a_row(name):
    """The demand matrix of the cache controller's bus call sites.

    GETS/GETM can find the entry in any stable state; GETM_NA needs a
    remote copy (never I); GETS_NA never finds a copy (only I); UPGR
    requires the requester to hold a copy (never I); WT can hit
    anything.  A derivation that misses one of these rows would raise
    ``DirectoryProtocolError`` at simulation time — this guard catches
    it at registration granularity instead.
    """
    spec = _spec(name)
    owned = [s for s in spec.states if s not in (DirState.I, DirState.S)]
    demanded = (
        [(state, DirRequest.GETS) for state in spec.states]
        + [(state, DirRequest.GETM) for state in spec.states]
        + [(state, DirRequest.GETM_NA) for state in spec.states
           if state is not DirState.I]
        + [(DirState.I, DirRequest.GETS_NA)]
        + [(state, DirRequest.UPGR) for state in (DirState.S,) + tuple(owned)]
        + [(state, DirRequest.WT) for state in spec.states]
    )
    missing = [
        (state.name, request.name)
        for state, request in demanded
        if spec.rule(state, request) is None
    ]
    assert not missing, f"{spec.name}: uncovered rows {missing}"


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_no_row_outside_the_declared_states(name):
    spec = _spec(name)
    for (state, request), rule in spec.rows.items():
        assert state in spec.states, (state, request, rule)


def test_o_state_tracks_sm_reachability():
    """O (dirty supplier retention) exists exactly for SM-using protocols."""
    by_name = {name: _spec(name) for name in ALL_PROTOCOLS}
    assert DirState.O in by_name["pim"].states  # supplier keeps SM
    assert DirState.O not in by_name["illinois"].states  # copyback to S


def test_update_family_patches_sharers_in_place():
    spec = _spec("write_update")
    rule = spec.rule(DirState.S, DirRequest.WT)
    assert DirAction.UPDATE_SHARERS in rule.actions
    assert rule.next_state is DirState.S
    inval = _spec("write_through").rule(DirState.S, DirRequest.WT)
    assert DirAction.INVAL_SHARERS in inval.actions


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_supplier_retention_matches_cache_spec(name):
    """A forwarded GETS leaves behind what the snooping supplier would."""
    cache_spec = get_protocol(name)
    spec = build_directory_spec(cache_spec)
    if DirState.M not in spec.states:
        pytest.skip("no dirty-exclusive state under this protocol")
    rule = spec.rule(DirState.M, DirRequest.GETS)
    next_line, copyback = cache_spec.supplier_rules()[CacheState.EM]
    if next_line is CacheState.SM:
        assert rule.next_state is DirState.O and rule.owner == "keep"
    else:
        assert rule.next_state is DirState.S
    assert (DirAction.OWNER_COPYBACK in rule.actions) == bool(copyback)


# ---------------------------------------------------------------------------
# Rendering and metadata (the LOCKE-table style of ProtocolSpec).


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_render_table_lists_every_row(name):
    spec = _spec(name)
    table = spec.render_table()
    assert spec.name in table
    for column in ("state", "request", "transient", "next", "owner"):
        assert column in table
    for transient in spec.transient_names():
        assert transient in table


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_transients_are_unique_per_table(name):
    spec = _spec(name)
    transients = [rule.transient for rule in spec.rows.values()]
    assert len(transients) == len(set(transients)), (
        f"{spec.name}: two rows share a transient name"
    )


def test_summary_shape():
    summary = _spec("pim").summary()
    assert summary["name"] == "pim_dir"
    assert summary["protocol"] == "pim"
    assert summary["rows"] == len(_spec("pim").rows)
    assert "O" in summary["states"]
    assert summary["transients"] == list(_spec("pim").transient_names())


# ---------------------------------------------------------------------------
# Entry mechanics.


def test_entry_sharer_list_round_trips():
    entry = DirectoryEntry(DirState.S, owner=-1, sharers=0b1011)
    assert entry.sharer_list() == (0, 1, 3)
    assert "sharers=[0, 1, 3]" in repr(entry)
    entry.transient = "SS_F"
    assert "transient='SS_F'" in repr(entry)


def test_update_remote_action_detected_from_store_table():
    spec = get_protocol("write_update")
    assert any(
        rule.remote is RemoteAction.UPDATE for rule in spec.store.values()
    )
