"""Cross-layer integration tests: machine -> trace -> file -> replay,
example scripts, and end-to-end consistency properties."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import (
    CacheConfig,
    MachineConfig,
    OptimizationConfig,
    SimulationConfig,
)
from repro.core.replay import replay
from repro.machine.machine import KL1Machine
from repro.trace.io import read_trace, write_trace

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

PIPELINE = """
stage(0, In, Out) :- Out = In.
stage(N, In, Out) :- N > 0 |
    bump(In, Mid),
    N1 := N - 1,
    stage(N1, Mid, Out).
bump([], Out) :- Out = [].
bump([X|Xs], Out) :- X1 := X + 1, Out = [X1|O2], bump(Xs, O2).
gen(0, L) :- L = [].
gen(N, L) :- N > 0 | L = [N|T], N1 := N - 1, gen(N1, T).
total([], A, R) :- R = A.
total([X|Xs], A, R) :- A1 := A + X, total(Xs, A1, R).
main(R) :- gen(20, L), stage(10, L, Out), total(Out, 0, R).
"""


def test_full_pipeline_roundtrip(tmp_path):
    """Execute -> capture -> serialize -> load -> replay must reproduce
    the execution-driven statistics bit-for-bit."""
    machine = KL1Machine(PIPELINE, MachineConfig(n_pes=4, seed=2))
    result = machine.run("main(R)")
    assert result.answer["R"] == sum(range(1, 21)) + 20 * 10

    path = tmp_path / "pipeline.trace"
    write_trace(result.trace, path)
    loaded = read_trace(path)
    replayed = replay(loaded, SimulationConfig())
    live = result.stats
    assert replayed.bus_cycles_total == live.bus_cycles_total
    assert replayed.refs == live.refs
    assert replayed.hits == live.hits
    assert replayed.pattern_cycles == live.pattern_cycles


def test_same_trace_many_geometries_monotone_capacity(tmp_path):
    machine = KL1Machine(PIPELINE, MachineConfig(n_pes=4, seed=2))
    result = machine.run("main(R)")
    previous = None
    for capacity in (256, 1024, 4096):
        stats = replay(
            result.trace,
            SimulationConfig(cache=CacheConfig.from_capacity(capacity)),
        )
        if previous is not None:
            assert stats.miss_ratio <= previous + 1e-9
        previous = stats.miss_ratio


def test_optimizations_help_a_real_program():
    machine = KL1Machine(PIPELINE, MachineConfig(n_pes=4, seed=2))
    result = machine.run("main(R)")
    on = replay(result.trace, SimulationConfig(opts=OptimizationConfig.all()))
    off = replay(result.trace, SimulationConfig(opts=OptimizationConfig.none()))
    assert on.bus_cycles_total < off.bus_cycles_total


def test_per_pe_cycle_accounting_is_complete():
    machine = KL1Machine(PIPELINE, MachineConfig(n_pes=4, seed=2))
    result = machine.run("main(R)")
    stats = result.stats
    assert all(cycles > 0 for cycles in stats.pe_cycles)
    # Elapsed time at least covers the serialized bus.
    assert stats.total_cycles >= stats.bus_cycles_total


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "custom_program.py", "load_balancing_study.py",
     "protocol_comparison.py"],
)
def test_examples_run(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip()
