"""The pluggable interconnect layer (repro.core.interconnect).

Three families:

1. **Registry and config plumbing** — name lookup mirrors the protocol
   registry (friendly ``KeyError`` listing the registered names) and
   ``SimulationConfig`` validates the backend at construction.
2. **Directory semantics on a live system** — forwards/invalidations
   counted per third-party message, indirection charged at
   ``hop_cycles`` per message into the PE clock, the shared timeline
   *and* the ``directory_indirection`` ledger bucket (the exact-sum
   identity holds), entries resynchronized and ``check_invariants``
   clean throughout.
3. **Path identity** — the generated kernel, the checked loop and the
   K=2 clustered replays agree bit-for-bit with the interpreted
   reference under the directory backend, for every registered
   protocol (the same gates the bus backend answers to).
"""

import pytest

from repro.cluster.replay import replay_clustered, replay_interleaved
from repro.core.config import CacheConfig, SimulationConfig
from repro.core.interconnect import (
    DirectoryInterconnect,
    SnoopingBus,
    build_interconnect,
    get_interconnect_factory,
    interconnect_names,
    is_interconnect_registered,
    register_interconnect,
)
from repro.core.interconnect import _REGISTRY as _INTERCONNECTS
from repro.core.protocol import protocol_names
from repro.core.protocol.directory import DirState
from repro.core.replay import replay
from repro.core.states import CacheState
from repro.core.system import PIMCacheSystem
from repro.obs.metrics import cycle_ledger
from repro.trace.events import Area, Op
from repro.trace.synthetic import generate_contract_trace

HEAP = Area.HEAP

DIRECTORY_COUNTERS = (
    "directory_transactions",
    "directory_forwards",
    "directory_invalidations",
    "directory_indirection_cycles",
)


def _dir_system(n_pes=4, **kwargs) -> PIMCacheSystem:
    config = SimulationConfig(interconnect="directory", **kwargs)
    return PIMCacheSystem(config, n_pes)


# ---------------------------------------------------------------------------
# Registry and config plumbing.


def test_builtin_backends_registered():
    assert interconnect_names() == ("bus", "directory")
    assert is_interconnect_registered("bus")
    assert not is_interconnect_registered("crossbar")


def test_unknown_backend_lists_registered_names():
    with pytest.raises(KeyError, match="registered: bus, directory"):
        get_interconnect_factory("crossbar")


def test_duplicate_registration_needs_replace():
    with pytest.raises(ValueError, match="already registered"):
        register_interconnect("bus", SnoopingBus)
    register_interconnect("bus", SnoopingBus, replace=True)  # no-op rewire
    assert _INTERCONNECTS["bus"] is SnoopingBus


def test_config_validates_backend_at_construction():
    with pytest.raises(ValueError, match="unknown interconnect 'mesh'"):
        SimulationConfig(interconnect="mesh")
    assert SimulationConfig().with_interconnect("directory").interconnect == (
        "directory"
    )


def test_system_wires_the_selected_backend():
    bus_system = PIMCacheSystem(SimulationConfig(), 2)
    assert type(bus_system.interconnect) is SnoopingBus
    assert bus_system.interconnect.system is bus_system
    dir_system = _dir_system(2)
    assert type(dir_system.interconnect) is DirectoryInterconnect
    assert dir_system.interconnect.spec.protocol == "pim"
    assert build_interconnect("bus", bus_system).free_at == 0


def test_bus_backend_keeps_directory_counters_zero():
    trace = generate_contract_trace(2_000, n_pes=4, seed=11)
    stats = replay(trace, SimulationConfig())
    for name in DIRECTORY_COUNTERS:
        assert getattr(stats, name) == 0
    assert "directory_transactions" in stats.as_dict()


# ---------------------------------------------------------------------------
# Directory semantics on a live system.


def test_forward_and_invalidation_charging():
    system = _dir_system(2)
    hop = system.config.cluster.hop_cycles
    stats = system.stats
    directory = system.interconnect

    system.access(0, Op.R, HEAP, 0x100)  # GETS on I: no third parties
    assert stats.directory_transactions == 1
    assert stats.directory_indirection_cycles == 0
    entry = directory.entries[0x100 >> 2]
    assert entry.state is DirState.E and entry.owner == 0

    system.access(1, Op.R, HEAP, 0x100)  # GETS on E: forward to owner
    assert stats.directory_forwards == 1
    assert stats.directory_indirection_cycles == hop
    entry = directory.entries[0x100 >> 2]
    assert entry.state is DirState.S and entry.sharer_list() == (0, 1)

    clock_before = stats.pe_cycles[0]
    free_before = directory.free_at
    system.access(0, Op.W, HEAP, 0x100)  # UPGR on S: invalidate PE1
    assert stats.directory_invalidations == 1
    assert stats.directory_indirection_cycles == 2 * hop
    # The indirection reached the PE clock and the shared timeline, not
    # just the counter.
    assert stats.pe_cycles[0] - clock_before >= hop
    assert directory.free_at - free_before >= hop
    entry = directory.entries[0x100 >> 2]
    assert entry.state is DirState.M and entry.owner == 0
    assert system.line_state(1, 0x100) in (None, CacheState.INV)
    system.check_invariants()


def test_single_copy_traffic_is_free():
    """One PE alone on its blocks never pays indirection (no third party)."""
    system = _dir_system(2)
    for word in range(0, 64, 2):
        system.access(0, Op.R, HEAP, 0x400 + word)
        system.access(0, Op.W, HEAP, 0x400 + word)
    assert system.stats.directory_transactions > 0
    assert system.stats.directory_forwards == 0
    assert system.stats.directory_invalidations == 0
    assert system.stats.directory_indirection_cycles == 0
    system.check_invariants()


def test_silent_store_is_invisible_until_next_transaction():
    system = _dir_system(2)
    directory = system.interconnect
    system.access(0, Op.R, HEAP, 0x200)
    assert system.line_state(0, 0x200) is CacheState.EC
    system.access(0, Op.W, HEAP, 0x200)  # silent EC->EM, zero bus traffic
    assert system.line_state(0, 0x200) is CacheState.EM
    entry = directory.entries[0x200 >> 2]
    assert entry.state is DirState.E  # home node still believes E
    system.check_invariants()  # the E-over-EM exception holds
    system.access(1, Op.R, HEAP, 0x200)  # next transaction learns the truth
    entry = directory.entries[0x200 >> 2]
    assert entry.state is DirState.O  # pim: dirty supplier keeps ownership
    assert entry.owner == 0


def test_flush_drops_every_entry():
    system = _dir_system(2)
    system.access(0, Op.R, HEAP, 0x100)
    system.access(1, Op.W, HEAP, 0x180)
    assert system.interconnect.entries
    system.flush_all()
    assert not system.interconnect.entries
    system.check_invariants()


def test_ledger_attributes_indirection_exactly():
    trace = generate_contract_trace(4_000, n_pes=4, seed=3)
    stats = replay(trace, SimulationConfig(interconnect="directory"))
    assert stats.directory_indirection_cycles > 0
    ledger = cycle_ledger(stats)  # verify=True raises unless exact
    assert ledger.entries["directory_indirection"] == (
        stats.directory_indirection_cycles
    )


def test_invariants_hold_along_a_contract_trace():
    trace = generate_contract_trace(2_000, n_pes=4, seed=7)
    system = _dir_system(4)
    for i, (pe, op, area, addr, flags) in enumerate(trace):
        system.access(pe, op, area, addr, 0, flags)
        if i % 250 == 0:
            system.check_invariants()
    system.check_invariants()


# ---------------------------------------------------------------------------
# Path identity under the directory backend.


@pytest.mark.parametrize("protocol", protocol_names())
def test_generated_kernel_matches_interpreted(protocol):
    config = SimulationConfig(protocol=protocol, interconnect="directory")
    trace = generate_contract_trace(3_000, n_pes=4, seed=13)
    interpreted = replay(trace, config, kernel="interpreted")
    generated = replay(trace, config, kernel="generated")
    assert interpreted.as_dict() == generated.as_dict()
    assert interpreted.directory_transactions > 0


def test_clustered_replay_is_bit_identical_at_k2():
    config = SimulationConfig(
        cache=CacheConfig(n_sets=32), interconnect="directory"
    ).with_clusters(2)
    trace = generate_contract_trace(3_000, n_pes=4, seed=17)
    interleaved = replay_interleaved(trace, config)
    sharded = replay_clustered(trace, config)
    assert interleaved.as_dict() == sharded.as_dict()
    assert interleaved.stats.directory_transactions > 0
    # Cross-cluster directory messages ride the ring.
    assert interleaved.network.messages > 0
