"""Property: without sharing, the directory costs exactly the bus.

A home-node directory only diverges from the broadcast bus when a
transaction must touch a *third party* — forward to an owner, invalidate
a sharer.  On a trace where every PE stays inside its own address
region there are no third parties, so every per-PE counter and clock
must come out identical under both backends, for every registered
protocol.  (The equivalence is by construction, and this is the test
that keeps it that way: a backend change that charges indirection
without a third-party message breaks here first.)
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import SimulationConfig
from repro.core.protocol import protocol_names
from repro.core.replay import replay
from repro.trace.buffer import TraceBuffer
from repro.trace.events import Area, Op

#: Private-region ops: the read/write families plus the optimized
#: commands (DW allocates without a bus access, ER purges after the
#: read) — everything except locks, whose pairing contract would
#: constrain the generator without adding any sharing.
_OPS = (Op.R, Op.R, Op.W, Op.W, Op.DW, Op.ER)
_AREAS = (Area.HEAP, Area.GOAL)

DIRECTORY_COUNTERS = (
    "directory_transactions",
    "directory_forwards",
    "directory_invalidations",
    "directory_indirection_cycles",
)

refs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),   # pe
        st.integers(min_value=0, max_value=len(_OPS) - 1),
        st.integers(min_value=0, max_value=1),   # area
        st.integers(min_value=0, max_value=255), # word offset in the region
    ),
    min_size=1,
    max_size=300,
)


def _trace(entries) -> TraceBuffer:
    buffer = TraceBuffer(n_pes=4)
    for pe, op_index, area_index, offset in entries:
        # Disjoint per-PE regions: bit 12+ carries the PE, so no block
        # is ever resident in two caches.
        buffer.append(
            pe, _OPS[op_index], _AREAS[area_index], (pe << 12) | offset
        )
    return buffer


@settings(max_examples=30, deadline=None)
@given(entries=refs, protocol=st.sampled_from(sorted(protocol_names())))
def test_single_sharer_traces_cost_the_same(entries, protocol):
    trace = _trace(entries)
    bus = replay(trace, SimulationConfig(protocol=protocol))
    directory = replay(
        trace, SimulationConfig(protocol=protocol, interconnect="directory")
    )
    # No third party ever existed, so no message and no indirection ...
    assert directory.directory_forwards == 0
    assert directory.directory_invalidations == 0
    assert directory.directory_indirection_cycles == 0
    # ... and every shared counter agrees exactly (the bookkeeping
    # counter directory_transactions is the one allowed difference: it
    # counts transactions, not costs).
    bus_dict = bus.as_dict()
    dir_dict = directory.as_dict()
    for name in DIRECTORY_COUNTERS:
        bus_dict.pop(name)
        dir_dict.pop(name)
    assert bus_dict == dir_dict
