"""The cache layer must be semantically transparent.

Whatever the cache geometry, protocol, or optimization flags — and even
with no cache attached at all — the abstract machine must compute the
same answers with the same reductions and the same reference stream.
Only the *cost* statistics may differ.
"""

import pytest

from repro.core.config import (
    CacheConfig,
    MachineConfig,
    OptimizationConfig,
    SimulationConfig,
)
from repro.machine.machine import KL1Machine

PROGRAM = """
fib(N, R) :- N < 2 | R = N.
fib(N, R) :- N >= 2 |
    N1 := N - 1, N2 := N - 2,
    fib(N1, A), fib(N2, B), R := A + B.
main(R) :- fib(13, R).
"""

CONFIGS = {
    "base": SimulationConfig(),
    "no-opt": SimulationConfig(opts=OptimizationConfig.none()),
    "tiny-cache": SimulationConfig(
        cache=CacheConfig(block_words=4, n_sets=2, associativity=1)
    ),
    "wide-blocks": SimulationConfig(
        cache=CacheConfig(block_words=16, n_sets=64, associativity=4)
    ),
    "illinois": SimulationConfig(protocol="illinois"),
    "write-through": SimulationConfig(protocol="write_through"),
    "write-update": SimulationConfig(protocol="write_update"),
    "tracked": SimulationConfig(track_data=True),
    "uncached": None,
}


def run_with(sim_config):
    machine = KL1Machine(PROGRAM, MachineConfig(n_pes=4, seed=5), sim_config)
    return machine.run("main(R)")


@pytest.fixture(scope="module")
def reference_run():
    return run_with(SimulationConfig())


@pytest.mark.parametrize("label", list(CONFIGS))
def test_semantics_are_cache_independent(label, reference_run):
    result = run_with(CONFIGS[label])
    assert result.answer["R"] == 233
    assert result.reductions == reference_run.reductions, label
    assert result.suspensions == reference_run.suspensions, label
    assert result.memory_refs == reference_run.memory_refs, label
    # The reference *stream* is identical, reference by reference.
    assert list(result.trace) == list(reference_run.trace), label


def test_costs_do_differ():
    """Sanity check that the configs above are not accidentally equal."""
    base = run_with(SimulationConfig())
    tiny = run_with(CONFIGS["tiny-cache"])
    assert tiny.stats.bus_cycles_total > base.stats.bus_cycles_total
