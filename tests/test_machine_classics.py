"""Classic committed-choice programs as machine integration tests.

These exercise combinations the paper benchmarks do not: indeterminate
stream merge, accumulator quicksort, AND-parallel search with pruning
guards, and deep producer/consumer chains, across several PE counts.
"""

import pytest

from repro.core.config import MachineConfig
from repro.machine.machine import KL1Machine

QUEENS = """
% Count the placements of N non-attacking queens, one per row.
queens(N, Count) :- place(N, N, [], Count).

% place(Row, N, Cols, Count): queens remaining, board size, columns so far.
place(0, N, Cols, Count) :- Count = 1.
place(R, N, Cols, Count) :- R > 0 | tryc(N, R, N, Cols, Count).

% Try each column C = N..1 for this row.
tryc(0, R, N, Cols, Count) :- Count = 0.
tryc(C, R, N, Cols, Count) :- C > 0 |
    safe(Cols, C, 1, Ok),
    branch(Ok, C, R, N, Cols, Count).

branch(yes, C, R, N, Cols, Count) :-
    R1 := R - 1,
    place(R1, N, [C|Cols], C1),
    C2 := C - 1,
    tryc(C2, R, N, Cols, C3),
    Count := C1 + C3.
branch(no, C, R, N, Cols, Count) :-
    C2 := C - 1,
    tryc(C2, R, N, Cols, Count).

safe([], C, D, Ok) :- Ok = yes.
safe([Col|Cols], C, D, Ok) :- Col =:= C | Ok = no.
safe([Col|Cols], C, D, Ok) :- Col - C =:= D | Ok = no.
safe([Col|Cols], C, D, Ok) :- C - Col =:= D | Ok = no.
safe([Col|Cols], C, D, Ok) :-
    Col =\\= C, Col - C =\\= D, C - Col =\\= D |
    D1 := D + 1,
    safe(Cols, C, D1, Ok).

main(N, Count) :- queens(N, Count).
"""

QSORT = """
qsort([], S) :- S = [].
qsort([P|Xs], S) :- part(P, Xs, Lo, Hi), qsort(Lo, SL), qsort(Hi, SH),
    app(SL, [P|SH2], S), SH2 = SH.

part(P, [], Lo, Hi) :- Lo = [], Hi = [].
part(P, [X|Xs], Lo, Hi) :- X < P | Lo = [X|L2], part(P, Xs, L2, Hi).
part(P, [X|Xs], Lo, Hi) :- X >= P | Hi = [X|H2], part(P, Xs, Lo, H2).

app([], Ys, Z) :- Z = Ys.
app([X|Xs], Ys, Z) :- Z = [X|Z2], app(Xs, Ys, Z2).

gen(0, Seed, L) :- L = [].
gen(N, Seed, L) :- N > 0 |
    S2 := (Seed * 109 + 89) mod 1024,
    L = [S2|T],
    N1 := N - 1,
    gen(N1, S2, T).

main(N, S) :- gen(N, 7, L), qsort(L, S).
"""

MERGE = """
% Indeterminate two-way stream merge.
merge([X|Xs], Ys, Z) :- Z = [X|Z2], merge(Xs, Ys, Z2).
merge(Xs, [Y|Ys], Z) :- Z = [Y|Z2], merge(Xs, Ys, Z2).
merge([], Ys, Z) :- Z = Ys.
merge(Xs, [], Z) :- Z = Xs.

gen(I, 0, S) :- S = [].
gen(I, N, S) :- N > 0 | S = [I|T], N1 := N - 1, gen(I, N1, T).

count([], A, R) :- R = A.
count([X|Xs], A, R) :- A1 := A + X, count(Xs, A1, R).

main(R) :- gen(1, 50, A), gen(2, 70, B), merge(A, B, M), count(M, 0, R).
"""


@pytest.mark.parametrize("n_pes", [1, 4])
def test_queens_counts(n_pes):
    # branch/6 needs wider goal records than the 8-word default.
    machine = KL1Machine(
        QUEENS, MachineConfig(n_pes=n_pes, seed=1, goal_record_words=12)
    )
    result = machine.run("main(5, Count)")
    assert result.answer["Count"] == 10


def test_queens_six():
    machine = KL1Machine(
        QUEENS, MachineConfig(n_pes=8, seed=1, goal_record_words=12)
    )
    assert machine.run("main(6, Count)").answer["Count"] == 4


@pytest.mark.parametrize("n_pes", [1, 4])
def test_qsort_sorts(n_pes):
    machine = KL1Machine(QSORT, MachineConfig(n_pes=n_pes, seed=1))
    result = machine.run("main(60, S)")
    values = result.answer["S"]
    assert len(values) == 60
    assert values == sorted(values)


def test_indeterminate_merge_preserves_multiset():
    machine = KL1Machine(MERGE, MachineConfig(n_pes=4, seed=1))
    result = machine.run("main(R)")
    assert result.answer["R"] == 50 * 1 + 70 * 2


def test_merge_with_one_empty_stream():
    machine = KL1Machine(MERGE, MachineConfig(n_pes=2, seed=1))
    source_result = machine.run("gen(3, 4, S)")
    assert source_result.answer["S"] == [3, 3, 3, 3]


def test_queens_parallelizes():
    machine = KL1Machine(
        QUEENS, MachineConfig(n_pes=8, seed=1, goal_record_words=12)
    )
    result = machine.run("main(6, Count)")
    busy = sum(1 for count in result.pe_reductions if count > 50)
    assert busy >= 6  # the search tree spreads across the machine
