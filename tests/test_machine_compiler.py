"""Clause compiler tests."""

import pytest

from repro.machine.compiler import compile_program
from repro.machine.errors import CompileError
from repro.machine.store import INSTR_BASE
from repro.machine.terms import INT


def compile_one(source):
    program = compile_program(source)
    procedures = list(program.procedures.values())
    assert len(procedures) >= 1
    return program, procedures[0].clauses[0]


def ops(instrs):
    return [i.op for i in instrs]


class TestHeadCompilation:
    def test_constants_become_waits(self):
        _, clause = compile_one("p(1, foo).")
        assert ops(clause.passive) == ["wait_const", "wait_const", "commit"]
        assert clause.passive[0].b == (INT, 1)

    def test_first_and_repeat_variables(self):
        _, clause = compile_one("p(X, X).")
        assert ops(clause.passive) == ["head_var", "head_val", "commit"]

    def test_anonymous_variable_matches_anything(self):
        _, clause = compile_one("p(_, _).")
        assert ops(clause.passive) == ["commit"]

    def test_list_pattern(self):
        _, clause = compile_one("p([X|Xs]).")
        assert ops(clause.passive) == [
            "wait_list", "read_var", "read_var", "commit",
        ]

    def test_nested_structure_breadth_first(self):
        _, clause = compile_one("p([a, b]).")
        # [a, b] = cons(a, cons(b, [])): outer reads a then a temp for the
        # tail, then matches the tail.
        assert ops(clause.passive) == [
            "wait_list", "read_const", "read_var",
            "wait_list", "read_const", "read_const",
            "commit",
        ]

    def test_struct_head(self):
        program, clause = compile_one("p(f(X, 1)).")
        assert clause.passive[0].op == "wait_struct"
        assert clause.passive[0].c == 2

    def test_arity_limit_enforced(self):
        with pytest.raises(CompileError):
            compile_program("p(A, B, C, D, E, F).")


class TestGuardCompilation:
    def test_comparison(self):
        _, clause = compile_one("p(X) :- X > 3 | q.")
        guard = clause.passive[-2]
        assert guard.op == "guard_cmp"
        assert guard.a == ">"
        assert guard.b == ("reg", 1)
        assert guard.c == ("int", 3)

    def test_expression_guard(self):
        _, clause = compile_one("p(X) :- X mod 2 =:= 0 | q.")
        guard = clause.passive[-2]
        assert guard.b == ("mod", ("reg", 1), ("int", 2))

    def test_integer_and_wait_guards(self):
        _, clause = compile_one("p(X) :- integer(X), wait(X) | q.")
        assert ops(clause.passive)[-3:-1] == ["guard_integer", "guard_wait"]

    def test_otherwise_is_true(self):
        _, clause = compile_one("p(X) :- otherwise | q.")
        assert ops(clause.passive) == ["head_var", "commit"]

    def test_unknown_guard_rejected(self):
        with pytest.raises(CompileError):
            compile_program("p(X) :- frobnicate(X) | q.")

    def test_guard_variable_must_come_from_head(self):
        with pytest.raises(CompileError):
            compile_program("p(X) :- Y > 0 | q.")


class TestBodyCompilation:
    def test_first_occurrence_unification_is_an_alias(self):
        _, clause = compile_one("p(X) :- Y = 1, q(Y).")
        # No body_unify: Y aliases the register holding 1.
        assert "body_unify" not in ops(clause.body)

    def test_head_variable_unification_is_real(self):
        _, clause = compile_one("p(X) :- X = 1.")
        assert "body_unify" in ops(clause.body)

    def test_assignment_flattens_to_builtin_goals(self):
        program, clause = compile_one("p(X, Y) :- Y := X * 2 + 1.")
        spawns = [i for i in clause.body if i.op == "spawn"]
        names = [program.symbols.functor_name(s.a)[0] for s in spawns]
        assert names == ["mul", "add"]

    def test_spawn_arguments_built_before_spawn(self):
        _, clause = compile_one("p(X) :- q([X]).")
        body_ops = ops(clause.body)
        assert body_ops.index("put_list") < body_ops.index("spawn")

    def test_goal_record_arity_limit(self):
        with pytest.raises(CompileError):
            compile_program("p :- q(1, 2, 3, 4, 5, 6).")

    def test_builtins_not_redefinable(self):
        with pytest.raises(CompileError):
            compile_program("add(A, B, C) :- C = 0.")


class TestProgramLayout:
    def test_code_addresses_are_disjoint_and_ordered(self):
        program = compile_program("p(0).\np(N) :- N > 0 | p(0).")
        clauses = list(program.procedures.values())[0].clauses
        first, second = clauses
        assert first.passive_base >= INSTR_BASE
        assert first.body_base == first.passive_base + len(first.passive)
        assert second.passive_base == first.body_base + len(first.body)

    def test_builtin_stubs_reserved(self):
        program = compile_program("p(0).")
        assert len(program.builtin_stubs) == 5
        assert min(program.builtin_stubs.values()) == INSTR_BASE

    def test_source_lines_counted(self):
        program = compile_program("% comment\np(0).\n\np(1).\n")
        assert program.source_lines == 2

    def test_listing_renders(self):
        program = compile_program("p(X) :- X > 0 | p(0).")
        listing = program.listing()
        assert "p/1" in listing
        assert "guard_cmp" in listing

    def test_procedure_lookup(self):
        program = compile_program("p(0).")
        assert program.procedure("p", 1).arity == 1
        with pytest.raises(KeyError):
            program.procedure("missing", 2)
