"""Engine semantics tests driven through small FGHC programs."""

import pytest

from repro.core.config import MachineConfig
from repro.machine.errors import (
    DeadlockError,
    LimitExceededError,
    ProgramFailure,
    UnificationFailure,
)
from repro.machine.machine import KL1Machine


def run(source, query, n_pes=2, **kwargs):
    machine = KL1Machine(source, MachineConfig(n_pes=n_pes, seed=1))
    return machine.run(query, **kwargs)


class TestReduction:
    def test_facts_and_matching(self):
        result = run("color(red).\ncolor(blue).\nmain(X) :- color(blue), X = ok.", "main(X)")
        assert result.answer["X"] == "ok"

    def test_clause_selection_by_constant(self):
        source = """
        f(0, R) :- R = zero.
        f(1, R) :- R = one.
        f(N, R) :- N > 1 | R = many.
        main(A, B, C) :- f(0, A), f(1, B), f(7, C).
        """
        result = run(source, "main(A, B, C)")
        assert result.answer == {"A": "zero", "B": "one", "C": "many"}

    def test_structure_decomposition(self):
        source = """
        area(rect(W, H), A) :- A := W * H.
        area(square(S), A) :- A := S * S.
        main(A, B) :- area(rect(3, 4), A), area(square(5), B).
        """
        result = run(source, "main(A, B)")
        assert result.answer == {"A": 12, "B": 25}

    def test_nonlinear_head(self):
        source = """
        same(X, X, R) :- R = yes.
        same(X, Y, R) :- X =\\= Y | R = no.
        main(A, B) :- same(3, 3, A), same(3, 4, B).
        """
        result = run(source, "main(A, B)")
        assert result.answer == {"A": "yes", "B": "no"}

    def test_deep_recursion_does_not_blow_stack(self):
        source = """
        count(0, R) :- R = done.
        count(N, R) :- N > 0 | N1 := N - 1, count(N1, R).
        main(R) :- count(3000, R).
        """
        assert run(source, "main(R)").answer["R"] == "done"

    def test_long_list_unification_is_iterative(self):
        source = """
        gen(0, L) :- L = [].
        gen(N, L) :- N > 0 | L = [N|T], N1 := N - 1, gen(N1, T).
        main(R) :- gen(2000, A), gen(2000, B), A = B, R = same.
        """
        assert run(source, "main(R)").answer["R"] == "same"


class TestSuspension:
    def test_consumer_waits_for_producer(self):
        source = """
        consume([], R) :- R = 0.
        consume([X|Xs], R) :- consume(Xs, R1), R := R1 + X.
        produce(0, L) :- L = [].
        produce(N, L) :- N > 0 | L = [N|T], N1 := N - 1, produce(N1, T).
        main(R) :- consume(L, R), produce(10, L).
        """
        result = run(source, "main(R)")
        assert result.answer["R"] == 55
        assert result.suspensions > 0

    def test_multiway_suspension_single_resume(self):
        """A goal hooked to two variables runs once when either binds."""
        source = """
        pick(a, Y, R) :- R = first.
        pick(X, b, R) :- R = second.
        main(R) :- pick(X, Y, R), X = a, Y = b.
        """
        result = run(source, "main(R)")
        assert result.answer["R"] in ("first", "second")

    def test_guard_expression_suspends(self):
        source = """
        gate(X, R) :- X * 2 > 4 | R = big.
        gate(X, R) :- X * 2 =< 4 | R = small.
        main(R) :- gate(X, R), X = 5.
        """
        assert run(source, "main(R)").answer["R"] == "big"

    def test_builtin_arithmetic_suspends_on_inputs(self):
        source = "main(R) :- R := X + 1, X = 41."
        assert run(source, "main(R)").answer["R"] == 42

    def test_var_var_unification_links(self):
        source = "main(A, B) :- A = B, B = 7."
        result = run(source, "main(A, B)")
        assert result.answer == {"A": 7, "B": 7}


class TestFailures:
    def test_all_clauses_fail_raises(self):
        with pytest.raises(ProgramFailure):
            run("f(1, R) :- R = one.", "f(2, R)")

    def test_body_unification_failure(self):
        with pytest.raises(UnificationFailure):
            run("main :- X = 1, X = 2.", "main")

    def test_deadlock_detected(self):
        with pytest.raises(DeadlockError):
            run("main(R) :- R := X + 1.", "main(R)")

    def test_reduction_limit(self):
        source = "loop :- loop.\nmain :- loop."
        with pytest.raises(LimitExceededError):
            run(source, "main", max_reductions=1000)

    def test_undefined_procedure(self):
        with pytest.raises(ProgramFailure):
            run("main :- nonexistent(1).", "main")

    def test_query_for_unknown_procedure(self):
        with pytest.raises(ProgramFailure):
            run("p(1).", "nope(X)")

    def test_division_by_zero(self):
        with pytest.raises(ProgramFailure):
            run("main(R) :- R := 1 / 0.", "main(R)")


class TestBuiltins:
    def test_all_arithmetic_operations(self):
        source = """
        main(A, B, C, D, E) :-
            A := 7 + 5, B := 7 - 5, C := 7 * 5, D := 7 / 5, E := 7 mod 5.
        """
        result = run(source, "main(A, B, C, D, E)")
        assert result.answer == {"A": 12, "B": 2, "C": 35, "D": 1, "E": 2}

    def test_negative_truncating_division(self):
        """KL1 integer division truncates toward zero."""
        source = "main(D, M) :- D := (0 - 7) / 2, M := (0 - 7) mod 2."
        result = run(source, "main(D, M)")
        assert result.answer["D"] == -3
        assert result.answer["M"] == -1

    def test_output_already_bound_checks(self):
        source = "main(R) :- X := 2 + 2, X = 4, R = ok."
        assert run(source, "main(R)").answer["R"] == "ok"

    def test_arithmetic_on_atom_fails(self):
        with pytest.raises(ProgramFailure):
            run("main(R) :- R := foo + 1.", "main(R)")


class TestDecoding:
    def test_answer_forms(self):
        source = "main(I, A, L, S) :- I = 42, A = hello, L = [1, [2], f(3)], S = pt(1, 2)."
        result = run(source, "main(I, A, L, S)")
        assert result.answer["I"] == 42
        assert result.answer["A"] == "hello"
        assert result.answer["L"] == [1, [2], ("f", 3)]
        assert result.answer["S"] == ("pt", 1, 2)

    def test_unbound_decodes_to_placeholder(self):
        source = "main(R) :- R = [X, 1]."
        answer = run(source, "main(R)").answer["R"]
        assert answer[1] == 1
        assert str(answer[0]).startswith("_G")
