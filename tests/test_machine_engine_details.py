"""Fine-grained engine semantics: dereference chains, nested structure
matching, guard corner cases, and suspension record plumbing."""

from repro.core.config import MachineConfig
from repro.machine.machine import KL1Machine
from repro.trace.events import Area, Op


def run(source, query, n_pes=1):
    machine = KL1Machine(source, MachineConfig(n_pes=n_pes, seed=1))
    return machine, machine.run(query)


class TestDereference:
    def test_long_ref_chains_resolve(self):
        source = """
        chain(A) :- A = B, B = C, C = D, D = E, E = 42.
        main(R) :- chain(R).
        """
        _, result = run(source, "main(R)")
        assert result.answer["R"] == 42

    def test_ref_chain_reads_are_counted(self):
        machine, result = run("main(R) :- R = A, A = B, B = 7.", "main(R)")
        assert result.stats.refs[Area.HEAP][Op.R] > 0


class TestStructureMatching:
    def test_deeply_nested_match(self):
        source = """
        peel(f(g(h(X))), R) :- R = X.
        main(R) :- peel(f(g(h(99))), R).
        """
        _, result = run(source, "main(R)")
        assert result.answer["R"] == 99

    def test_nested_mismatch_falls_through(self):
        source = """
        peel(f(g(X)), R) :- R = g.
        peel(f(h(X)), R) :- R = h.
        main(R) :- peel(f(h(1)), R).
        """
        _, result = run(source, "main(R)")
        assert result.answer["R"] == "h"

    def test_structure_arity_distinguishes_procedures(self):
        source = """
        p(f(X), R) :- R = one.
        p(g(X, Y), R) :- R = two.
        main(A, B) :- p(f(0), A), p(g(0, 0), B).
        """
        _, result = run(source, "main(A, B)")
        assert result.answer == {"A": "one", "B": "two"}

    def test_same_name_different_arity_functors_differ(self):
        source = """
        p(f(X), R) :- R = unary.
        p(f(X, Y), R) :- R = binary.
        main(R) :- p(f(1, 2), R).
        """
        _, result = run(source, "main(R)")
        assert result.answer["R"] == "binary"

    def test_suspension_inside_nested_structure(self):
        source = """
        peel(f(g(X)), R) :- R = X.
        mk(F) :- F = f(G), G = g(5).
        main(R) :- peel(F, R), mk(F).
        """
        _, result = run(source, "main(R)", n_pes=2)
        assert result.answer["R"] == 5
        assert result.suspensions >= 1


class TestGuards:
    def test_equality_of_atoms(self):
        source = """
        pick(X, R) :- X == foo | R = yes.
        pick(X, R) :- X \\== foo | R = no.
        main(A, B) :- pick(foo, A), pick(bar, B).
        """
        _, result = run(source, "main(A, B)")
        assert result.answer == {"A": "yes", "B": "no"}

    def test_guard_division_by_zero_fails_clause(self):
        source = """
        f(X, R) :- 10 / X > 1 | R = big.
        f(X, R) :- otherwise | R = other.
        main(R) :- f(0, R).
        """
        _, result = run(source, "main(R)")
        assert result.answer["R"] == "other"

    def test_guard_on_structure_fails_not_crashes(self):
        source = """
        f(X, R) :- X > 0 | R = pos.
        f(X, R) :- otherwise | R = other.
        main(R) :- f(g(1), R).
        """
        _, result = run(source, "main(R)")
        assert result.answer["R"] == "other"

    def test_multiple_guards_all_must_hold(self):
        source = """
        mid(X, R) :- X > 10, X < 20 | R = in.
        mid(X, R) :- otherwise | R = out.
        main(A, B, C) :- mid(15, A), mid(5, B), mid(25, C).
        """
        _, result = run(source, "main(A, B, C)")
        assert result.answer == {"A": "in", "B": "out", "C": "out"}


class TestSuspensionPlumbing:
    def test_hook_cell_written_on_suspend(self):
        source = (
            "waitx(X, R) :- X > 0 | R = X.\n"
            "bindit(X) :- X = 3.\n"
            "main(R) :- waitx(X, R), bindit(X)."
        )
        machine = KL1Machine(source, MachineConfig(n_pes=1, seed=1))
        result = machine.run("main(R)")
        assert result.answer["R"] == 3
        # Suspension and resumption touched the suspension area.
        assert result.stats.refs_by_area(Area.SUSPENSION) > 0

    def test_many_goals_on_one_variable(self):
        source = """
        waitx(X, R) :- X >= 0 | R := X + 1.
        sum4(A, B, C, D, R) :- T1 := A + B, T2 := C + D, R := T1 + T2.
        bindit(X) :- X = 10.
        main(R) :- waitx(X, A), waitx(X, B), waitx(X, C), waitx(X, D),
                   sum4(A, B, C, D, R), bindit(X).
        """
        _, result = run(source, "main(R)")
        assert result.answer["R"] == 44
        assert result.suspensions >= 4

    def test_suspension_records_recycled(self):
        source = """
        waitx(X, R) :- X >= 0 | R = X.
        loop(0, R) :- R = done.
        loop(N, R) :- N > 0 | waitx(X, _), X = N, N1 := N - 1, loop(N1, R).
        main(R) :- loop(50, R).
        """
        machine, result = run(source, "main(R)")
        assert result.answer["R"] == "done"
        # The free list keeps the suspension area from growing linearly.
        assert machine.susp_area.high_water[0] < 50 * machine.susp_area.stride


class TestBodyConstruction:
    def test_shared_substructure_built_once(self):
        source = "main(R) :- X = [1, 2], R = p(X, X)."
        machine, result = run(source, "main(R)")
        assert result.answer["R"] == ("p", [1, 2], [1, 2])

    def test_atom_interning_across_clauses(self):
        source = """
        a(R) :- R = shared_atom.
        b(R) :- R = shared_atom.
        main(X, Y) :- a(X), b(Y).
        """
        machine, result = run(source, "main(X, Y)")
        assert result.answer["X"] == result.answer["Y"] == "shared_atom"

    def test_zero_arity_spawn(self):
        source = """
        noop.
        main(R) :- noop, R = ok.
        """
        _, result = run(source, "main(R)")
        assert result.answer["R"] == "ok"
