"""Stop-and-copy garbage collector tests.

The collector must preserve program semantics exactly — including live
suspensions hooked to heap variables — while reclaiming dead structure,
performing zero instrumented memory references, and invalidating the
caches it relocated the heap under.
"""

import pytest

from repro.core.config import MachineConfig, SimulationConfig
from repro.machine.machine import KL1Machine

CHURN = """
% Builds and discards a K-element list N times, keeping only the sums:
% nearly the whole heap is garbage at any collection point.
churn(0, K, Acc, R) :- R = Acc.
churn(N, K, Acc, R) :- N > 0 |
    build(K, L),
    sum(L, 0, S),
    Acc2 := Acc + S,
    N1 := N - 1,
    churn(N1, K, Acc2, R).

build(0, L) :- L = [].
build(K, L) :- K > 0 | L = [K|T], K1 := K - 1, build(K1, T).

sum([], Acc, R) :- R = Acc.
sum([X|Xs], Acc, R) :- A := Acc + X, sum(Xs, A, R).

main(N, K, R) :- churn(N, K, 0, R).
"""


def run_churn(gc_threshold, n_pes=2, n=30, k=40):
    machine = KL1Machine(
        CHURN,
        MachineConfig(n_pes=n_pes, seed=1, gc_threshold_words=gc_threshold),
    )
    result = machine.run(f"main({n}, {k}, R)")
    return machine, result


def test_answer_survives_collections():
    expected = 30 * (40 * 41 // 2)
    machine, result = run_churn(gc_threshold=2000)
    assert result.answer["R"] == expected
    assert result.gc_collections > 0
    assert result.gc_words_reclaimed > 0


def test_gc_matches_no_gc_semantics():
    _, with_gc = run_churn(gc_threshold=2000)
    _, without_gc = run_churn(gc_threshold=None)
    assert with_gc.answer == without_gc.answer
    assert with_gc.reductions == without_gc.reductions
    assert without_gc.gc_collections == 0


def test_heap_shrinks_after_collection():
    machine, result = run_churn(gc_threshold=2000)
    # The final heap holds only live data, far below total allocation.
    total_allocated = result.heap_words + result.gc_words_reclaimed
    assert result.heap_words < total_allocated / 2


def test_collection_emits_no_memory_references():
    machine = KL1Machine(
        CHURN, MachineConfig(n_pes=2, seed=1, gc_threshold_words=None)
    )
    machine.run("main(5, 20, R)")
    refs_before = machine.port.total_refs
    stats = machine.collect()
    assert machine.port.total_refs == refs_before
    assert stats.words_before >= stats.words_after


def test_collection_invalidates_caches():
    machine = KL1Machine(CHURN, MachineConfig(n_pes=2, seed=1))
    machine.run("main(3, 10, R)")
    assert machine.system.caches[0].occupancy() > 0
    machine.collect()
    assert all(cache.occupancy() == 0 for cache in machine.system.caches)


def test_gc_preserves_suspended_goals():
    """A floating goal's argument terms are roots: collection must keep
    the consumer resumable with its stream intact."""
    source = """
    consume([], Acc, R) :- R = Acc.
    consume([X|Xs], Acc, R) :- A := Acc + X, consume(Xs, A, R).
    junk(0) :- true.
    junk(N) :- N > 0 | build(30, L), len(L, Z), N1 := N - 1, junk(N1).
    build(0, L) :- L = [].
    build(K, L) :- K > 0 | L = [K|T], K1 := K - 1, build(K1, T).
    len([], R) :- R = 0.
    len([X|Xs], R) :- len(Xs, R1), R := R1 + 1.
    produce(S) :- S = [1, 2, 3].
    main(R) :- consume(S, 0, R), junk(40), produce(S).
    """
    machine = KL1Machine(
        source, MachineConfig(n_pes=1, seed=1, gc_threshold_words=600)
    )
    result = machine.run("main(R)")
    assert result.answer["R"] == 6
    assert result.gc_collections > 0
    assert result.suspensions > 0


def test_gc_rejected_under_track_data():
    machine = KL1Machine(
        "main(R) :- R = 1.",
        MachineConfig(n_pes=1, seed=1),
        SimulationConfig(track_data=True),
    )
    machine.run("main(R)")
    with pytest.raises(RuntimeError):
        machine.collect()


def test_benchmarks_survive_gc():
    """The paper benchmarks still verify when collecting aggressively."""
    from repro.programs import get

    benchmark = get("puzzle")
    machine = KL1Machine(
        benchmark.source,
        MachineConfig(n_pes=4, seed=1, gc_threshold_words=500),
    )
    result = machine.run(benchmark.query("tiny"))
    assert result.answer[benchmark.answer_var] == benchmark.expected["tiny"]
    assert result.gc_collections > 0
