"""Tests for the remaining machine pieces: symbols, terms, the memory
port, and machine-level configuration wiring."""

from repro.core.config import MachineConfig, SimulationConfig
from repro.core.system import PIMCacheSystem
from repro.machine.machine import KL1Machine
from repro.machine.port import MemoryPort
from repro.machine.symbols import SymbolTable
from repro.machine.terms import (
    Clause,
    NIL,
    SAtom,
    SInt,
    SList,
    SStruct,
    SVar,
    slist,
    source_vars,
)
from repro.trace.buffer import TraceBuffer
from repro.trace.events import Area, FLAG_LOCK_CONTENDED, Op


class TestSymbolTable:
    def test_atoms_intern_stably(self):
        table = SymbolTable()
        a = table.atom("foo")
        assert table.atom("foo") == a
        assert table.atom("bar") != a
        assert table.atom_name(a) == "foo"

    def test_functors_keyed_by_name_and_arity(self):
        table = SymbolTable()
        f1 = table.functor("f", 1)
        f2 = table.functor("f", 2)
        assert f1 != f2
        assert table.functor_name(f2) == ("f", 2)
        assert table.functor_str(f1) == "f/1"

    def test_repr(self):
        table = SymbolTable()
        table.atom("x")
        assert "1 atoms" in repr(table)


class TestSourceTerms:
    def test_slist_builder(self):
        term = slist(SInt(1), SInt(2))
        assert term == SList(SInt(1), SList(SInt(2), NIL))

    def test_list_str_renders_proper_and_improper(self):
        assert str(slist(SInt(1), SInt(2))) == "[1, 2]"
        improper = SList(SInt(1), SVar("T"))
        assert str(improper) == "[1 | T]"

    def test_source_vars_first_occurrence_order(self):
        term = SStruct("f", (SVar("B"), SList(SVar("A"), SVar("B")), SVar("_")))
        assert source_vars(term) == ["B", "A"]

    def test_clause_str(self):
        clause = Clause(SStruct("p", (SVar("X"),)), (), (SAtom("q"),))
        assert str(clause) == "p(X) :- true | q."


class TestMemoryPort:
    def test_counts_refs_and_instructions(self):
        port = MemoryPort()
        port.issue(0, Op.R, Area.INSTRUCTION, 0)
        port.issue(0, Op.W, Area.HEAP, 1 << 28)
        assert port.total_refs == 2
        assert port.instruction_refs == 1

    def test_feeds_trace_and_system_identically(self):
        system = PIMCacheSystem(SimulationConfig(), 2)
        trace = TraceBuffer(2)
        port = MemoryPort(system, trace)
        port.issue(0, Op.W, Area.HEAP, 1 << 28)
        assert len(trace) == 1
        assert system.stats.total_refs == 1

    def test_conflict_injection_rate(self):
        port = MemoryPort(conflict_rate=1.0, seed=1)
        assert port.roll_conflict(shared=True) == FLAG_LOCK_CONTENDED
        assert port.roll_conflict(shared=False) == 0
        silent = MemoryPort(conflict_rate=0.0)
        assert silent.roll_conflict(shared=True) == 0


class TestMachineWiring:
    def test_runs_without_cache_system(self):
        machine = KL1Machine(
            "main(R) :- R = ok.", MachineConfig(n_pes=1), sim_config=None
        )
        result = machine.run("main(R)")
        assert result.answer["R"] == "ok"
        assert result.stats is None
        assert result.trace is not None

    def test_runs_without_trace_capture(self):
        machine = KL1Machine(
            "main(R) :- R = ok.",
            MachineConfig(n_pes=1, capture_trace=False),
        )
        result = machine.run("main(R)")
        assert result.trace is None
        assert result.stats is not None

    def test_injected_conflicts_show_in_stats(self):
        source = """
        bounce(0, X) :- X = done.
        bounce(N, X) :- N > 0 | N1 := N - 1, relay(N1, X).
        relay(N, X) :- bounce(N, X).
        main(X) :- bounce(40, X).
        """
        machine = KL1Machine(
            source, MachineConfig(n_pes=4, seed=1, lock_conflict_rate=1.0)
        )
        result = machine.run("main(X)")
        assert result.answer["X"] == "done"
        # Cross-PE lock pairs were marked contended: LH charged, UL sent.
        if result.stats.unlocks_with_waiter:
            assert result.stats.lh_responses > 0

    def test_query_with_structured_arguments(self):
        source = """
        sum([], A, R) :- R = A.
        sum([X|Xs], A, R) :- A1 := A + X, sum(Xs, A1, R).
        """
        machine = KL1Machine(source, MachineConfig(n_pes=2))
        result = machine.run("sum([5, 6, 7], 0, R)")
        assert result.answer["R"] == 18

    def test_bigger_goal_records_allow_wider_goals(self):
        source = "wide(A, B, C, D, E, F, R) :- R := A + B + C + D + E + F."
        machine = KL1Machine(
            source, MachineConfig(n_pes=2, goal_record_words=12)
        )
        result = machine.run("wide(1, 2, 3, 4, 5, 6, R)")
        assert result.answer["R"] == 21

    def test_machine_repr(self):
        machine = KL1Machine("main(R) :- R = 1.", MachineConfig(n_pes=2))
        assert "n_pes=2" in repr(machine)
