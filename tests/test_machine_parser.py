"""FGHC parser tests."""

import pytest

from repro.machine.errors import FGHCSyntaxError
from repro.machine.parser import parse_goal, parse_program
from repro.machine.terms import SAtom, SInt, SList, SStruct, SVar


def parse_one(text):
    clauses = parse_program(text)
    assert len(clauses) == 1
    return clauses[0]


class TestClauses:
    def test_fact(self):
        clause = parse_one("p(1, foo).")
        assert clause.head == SStruct("p", (SInt(1), SAtom("foo")))
        assert clause.guards == ()
        assert clause.body == ()

    def test_guard_and_body(self):
        clause = parse_one("p(X, Y) :- X > 0 | Y = 1.")
        assert clause.guards == (SStruct(">", (SVar("X"), SInt(0))),)
        assert clause.body == (SStruct("=", (SVar("Y"), SInt(1))),)

    def test_body_without_guard(self):
        clause = parse_one("p(X) :- q(X), r(X).")
        assert clause.guards == ()
        assert len(clause.body) == 2

    def test_true_goals_are_stripped(self):
        clause = parse_one("p(X) :- true | true.")
        assert clause.guards == ()
        assert clause.body == ()

    def test_zero_arity_head(self):
        clause = parse_one("main :- p(1).")
        assert clause.head == SStruct("main", ())

    def test_multiple_clauses(self):
        clauses = parse_program("p(0).\np(N) :- N > 0 | q(N).")
        assert len(clauses) == 2

    def test_comments_ignored(self):
        clauses = parse_program("% a comment\np(1). % trailing\n")
        assert len(clauses) == 1


class TestTerms:
    def test_list_sugar(self):
        clause = parse_one("p([1, 2 | T]).")
        term = clause.head.args[0]
        assert term == SList(SInt(1), SList(SInt(2), SVar("T")))

    def test_empty_list(self):
        clause = parse_one("p([]).")
        assert clause.head.args[0] == SAtom("[]")

    def test_nested_structures(self):
        clause = parse_one("p(f(g(X), [a])).")
        f = clause.head.args[0]
        assert isinstance(f, SStruct) and f.name == "f"
        assert isinstance(f.args[0], SStruct) and f.args[0].name == "g"

    def test_negative_literal(self):
        clause = parse_one("p(-1).")
        assert clause.head.args[0] == SInt(-1)

    def test_arithmetic_precedence(self):
        clause = parse_one("p(X) :- Y := X * 2 + 1, q(Y).")
        assign = clause.body[0]
        assert assign.name == ":="
        plus = assign.args[1]
        assert plus.name == "+"
        assert plus.args[0] == SStruct("*", (SVar("X"), SInt(2)))

    def test_parentheses_override_precedence(self):
        clause = parse_one("p(X) :- Y := X * (2 + 1), q(Y).")
        times = clause.body[0].args[1]
        assert times.name == "*"
        assert times.args[1] == SStruct("+", (SInt(2), SInt(1)))

    def test_mod_operator(self):
        clause = parse_one("p(X) :- X mod 2 =:= 0 | q.")
        guard = clause.guards[0]
        assert guard.name == "=:="
        assert guard.args[0] == SStruct("mod", (SVar("X"), SInt(2)))

    def test_comparison_tokens(self):
        for op in ("<", "=<", ">", ">=", "=:=", "=\\=", "==", "\\=="):
            clause = parse_one(f"p(X, Y) :- X {op} Y | q.")
            assert clause.guards[0].name == op


class TestErrors:
    def test_missing_period(self):
        with pytest.raises(FGHCSyntaxError):
            parse_program("p(X) :- q(X)")

    def test_unbalanced_paren(self):
        with pytest.raises(FGHCSyntaxError):
            parse_program("p(X :- q(X).")

    def test_bad_character(self):
        with pytest.raises(FGHCSyntaxError):
            parse_program("p(X) :- q(X) & r(X).")

    def test_error_carries_location(self):
        try:
            parse_program("p(X) :-\n q(X) &.")
        except FGHCSyntaxError as error:
            assert error.line == 2
        else:  # pragma: no cover
            raise AssertionError("expected a syntax error")


class TestParseGoal:
    def test_simple(self):
        goal = parse_goal("main(12, R)")
        assert goal == SStruct("main", (SInt(12), SVar("R")))

    def test_zero_arity(self):
        assert parse_goal("main") == SStruct("main", ())

    def test_trailing_garbage_rejected(self):
        with pytest.raises(FGHCSyntaxError):
            parse_goal("main(1). extra")
