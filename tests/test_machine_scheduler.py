"""Work-stealing scheduler tests."""

import pytest

from repro.core.config import MachineConfig
from repro.machine.machine import KL1Machine
from repro.trace.events import Area, Op

FANOUT = """
work(0, R) :- R = 1.
work(N, R) :- N > 0 | N1 := N - 1, work(N1, R1), work(N1, R2), R := R1 + R2.
main(R) :- work(8, R).
"""


def test_work_spreads_across_pes():
    machine = KL1Machine(FANOUT, MachineConfig(n_pes=4, seed=1))
    result = machine.run("main(R)")
    assert result.answer["R"] == 256
    busy = [count for count in result.pe_reductions if count > 0]
    assert len(busy) == 4, f"work never spread: {result.pe_reductions}"
    # No PE should hold a grossly dominant share.
    assert max(result.pe_reductions) < 0.75 * result.reductions


def test_single_pe_has_no_comm_traffic():
    machine = KL1Machine(FANOUT, MachineConfig(n_pes=1, seed=1))
    result = machine.run("main(R)")
    assert result.answer["R"] == 256
    assert result.stats is not None
    comm_refs = sum(result.stats.refs[Area.COMMUNICATION])
    assert comm_refs == 0


def test_multi_pe_generates_comm_lock_traffic():
    machine = KL1Machine(FANOUT, MachineConfig(n_pes=4, seed=1))
    result = machine.run("main(R)")
    stats = result.stats
    assert stats.refs[Area.COMMUNICATION][Op.LR] > 0  # request flags locked
    assert stats.refs[Area.COMMUNICATION][Op.RI] > 0  # replies read with RI


def test_stolen_goal_records_travel_cache_to_cache():
    machine = KL1Machine(FANOUT, MachineConfig(n_pes=4, seed=1))
    result = machine.run("main(R)")
    # ER reads of stolen records invalidate the supplier: the signature
    # of the paper's goal-distribution scenario.
    assert result.stats.supplier_invalidations > 0


def test_deterministic_given_seed():
    runs = []
    for _ in range(2):
        machine = KL1Machine(FANOUT, MachineConfig(n_pes=4, seed=7))
        result = machine.run("main(R)")
        runs.append((result.reductions, result.memory_refs,
                     result.stats.bus_cycles_total))
    assert runs[0] == runs[1]


def test_different_seeds_still_compute_same_answer():
    answers = set()
    for seed in (1, 2, 3):
        machine = KL1Machine(FANOUT, MachineConfig(n_pes=4, seed=seed))
        answers.add(machine.run("main(R)").answer["R"])
    assert answers == {256}


@pytest.mark.parametrize("n_pes", [1, 2, 3, 8])
def test_any_pe_count_works(n_pes):
    machine = KL1Machine(FANOUT, MachineConfig(n_pes=n_pes, seed=1))
    assert machine.run("main(R)").answer["R"] == 256
