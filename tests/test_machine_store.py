"""Backing-store unit tests (heap, record areas, mailboxes)."""

import pytest

from repro.machine.errors import HeapOverflowError
from repro.machine.store import (
    COMM_BASE,
    GOAL_BASE,
    CommArea,
    HeapStore,
    RecordArea,
    SUSP_BASE,
    owner_of,
    segment_base,
)
from repro.machine.terms import ATOM, INT, REF


class TestHeapStore:
    def test_allocate_and_read(self):
        heap = HeapStore(2)
        address = heap.allocate(0, INT, 42)
        assert heap.read(address) == (INT, 42)

    def test_unbound_cell_points_to_itself(self):
        heap = HeapStore(2)
        address = heap.allocate_unbound(1)
        assert heap.read(address) == (REF, address)
        assert owner_of(address) == 1

    def test_segments_are_per_pe(self):
        heap = HeapStore(4)
        a = heap.allocate(0, INT, 1)
        b = heap.allocate(3, INT, 2)
        assert owner_of(a) == 0
        assert owner_of(b) == 3
        assert heap.top(0) == 1 and heap.top(3) == 1

    def test_write(self):
        heap = HeapStore(1)
        address = heap.allocate_unbound(0)
        heap.write(address, ATOM, 7)
        assert heap.read(address) == (ATOM, 7)

    def test_overflow(self):
        heap = HeapStore(1, limit=4)
        for _ in range(4):
            heap.allocate(0, INT, 0)
        with pytest.raises(HeapOverflowError):
            heap.allocate(0, INT, 0)
        with pytest.raises(HeapOverflowError):
            heap.allocate_unbound(0)

    def test_total_words(self):
        heap = HeapStore(2)
        heap.allocate(0, INT, 1)
        heap.allocate(1, INT, 2)
        assert heap.total_words() == 2


class TestRecordArea:
    def test_allocate_extends_then_recycles(self):
        area = RecordArea(GOAL_BASE, 2, stride=8)
        first = area.allocate(0)
        second = area.allocate(0)
        assert second == first + 8
        area.release(first)
        assert area.allocate(0) == first  # recycled

    def test_release_routes_to_owning_segment(self):
        area = RecordArea(GOAL_BASE, 4, stride=8)
        record = area.allocate(2)
        area.release(record)  # released by anyone, lands in PE2's list
        assert area.allocate(2) == record

    def test_read_write(self):
        area = RecordArea(SUSP_BASE, 1, stride=4)
        record = area.allocate(0)
        area.write(record + 1, ("tagged", 9))
        assert area.read(record + 1) == ("tagged", 9)

    def test_alignment_to_stride(self):
        area = RecordArea(GOAL_BASE, 1, stride=8)
        records = [area.allocate(0) for _ in range(4)]
        assert all(record % 8 == 0 for record in records)

    def test_high_water_tracks_growth(self):
        area = RecordArea(GOAL_BASE, 1, stride=8)
        area.allocate(0)
        area.allocate(0)
        assert area.high_water[0] == 16


class TestCommArea:
    def test_mailbox_addresses_are_per_pe_and_block_separated(self):
        comm = CommArea(4)
        for pe in range(4):
            flag = comm.flag_address(pe)
            reply = comm.reply_address(pe)
            assert owner_of(flag) == pe
            assert (flag >> 24) & 0xF == pe
            # The flag and the reply slot sit in different 4-word blocks.
            assert flag // 4 != reply // 4

    def test_read_write(self):
        comm = CommArea(2)
        comm.write(comm.flag_address(1), 3)
        assert comm.read(comm.flag_address(1)) == 3
        assert comm.read(comm.flag_address(0)) == 0


def test_segment_base_math():
    assert segment_base(COMM_BASE, 0) == COMM_BASE
    assert segment_base(COMM_BASE, 5) == COMM_BASE | (5 << 24)
