"""Exporters: Chrome trace-event JSON and block hotness histograms."""

import json

import pytest

from repro.core.config import SimulationConfig
from repro.obs.events import EventKind, ProtocolEvent
from repro.obs.export import block_histogram, chrome_trace, write_chrome_trace
from repro.obs.metrics import COUNTER_PID, counter_track_events
from repro.obs.probe import ProtocolProbe
from repro.obs.schema import validate_chrome_trace, validate_hotness
from repro.obs.sink import CollectorSink
from repro.obs.windows import windowed_replay
from repro.trace.buffer import TraceBuffer
from repro.trace.events import AREA_BASE, Area, Op
from repro.trace.synthetic import generate_random_trace


def observed_events(trace, n_pes):
    sink = CollectorSink()
    windowed_replay(trace, SimulationConfig(), n_pes=n_pes,
                    probe=ProtocolProbe(sink))
    return sink.events


def test_chrome_trace_structure():
    trace = generate_random_trace(500, n_pes=4, seed=2)
    events = observed_events(trace, 4)
    doc = chrome_trace(events, n_pes=4)
    validate_chrome_trace(doc)
    rows = doc["traceEvents"]
    # Metadata names the bus process, the PE process, and one row per PE.
    metadata = [r for r in rows if r["ph"] == "M"]
    thread_names = {
        r["args"]["name"] for r in metadata if r["name"] == "thread_name"
    }
    assert {"PE0", "PE1", "PE2", "PE3"} <= thread_names
    # Every bus occupancy slice lives on pid 0 with a real duration.
    slices = [r for r in rows if r["ph"] == "X" and r["pid"] == 0]
    assert slices
    assert all(s["dur"] > 0 for s in slices)
    # State transitions are instants on the issuing PE's row.
    instants = [r for r in rows if r["ph"] == "i"]
    assert all(r["pid"] == 1 for r in instants)


def test_chrome_trace_lock_slices():
    buffer = TraceBuffer(n_pes=2)
    address = AREA_BASE[Area.HEAP]
    from repro.trace.events import FLAG_LOCK_CONTENDED

    buffer.append(0, Op.LR, Area.HEAP, address)
    buffer.append(0, Op.U, Area.HEAP, address, FLAG_LOCK_CONTENDED)
    buffer.append(1, Op.LR, Area.HEAP, address, FLAG_LOCK_CONTENDED)
    doc = chrome_trace(observed_events(buffer, 2), n_pes=2)
    validate_chrome_trace(doc)
    names = [r["name"] for r in doc["traceEvents"]]
    assert "busy-wait (LH)" in names
    assert "unlock broadcast (UL)" in names


def test_write_chrome_trace_is_loadable_json(tmp_path):
    trace = generate_random_trace(200, n_pes=2, seed=5)
    path = write_chrome_trace(
        observed_events(trace, 2), tmp_path / "t.trace.json", n_pes=2
    )
    validate_chrome_trace(json.loads(path.read_text()))


def test_block_histogram_counts():
    buffer = TraceBuffer(n_pes=4)
    base = AREA_BASE[Area.HEAP]
    # Block 0 of the heap: three PEs, two writes, four refs total.
    buffer.append(0, Op.R, Area.HEAP, base + 0)
    buffer.append(1, Op.W, Area.HEAP, base + 1)
    buffer.append(2, Op.DW, Area.HEAP, base + 2)
    buffer.append(0, Op.R, Area.HEAP, base + 3)
    # A second block, single PE.
    buffer.append(3, Op.R, Area.HEAP, base + 64)
    report = block_histogram(buffer, block_words=4, top=5)
    validate_hotness(report)
    assert report["total_refs"] == 5
    assert report["distinct_blocks"] == 2
    assert report["shared_blocks"] == 1
    assert report["sharing_histogram"] == {"1": 1, "3": 1}
    hottest = report["top_blocks"][0]
    assert hottest["refs"] == 4
    assert hottest["writes"] == 2
    assert hottest["reads"] == 2
    assert hottest["pes"] == 3
    assert hottest["area"] == "heap"
    assert hottest["address"] == base


def test_block_histogram_respects_block_size():
    buffer = TraceBuffer(n_pes=1)
    base = AREA_BASE[Area.GOAL]
    for offset in range(8):
        buffer.append(0, Op.R, Area.GOAL, base + offset)
    assert block_histogram(buffer, block_words=4)["distinct_blocks"] == 2
    assert block_histogram(buffer, block_words=8)["distinct_blocks"] == 1


def test_block_histogram_rejects_bad_block_size():
    with pytest.raises(ValueError):
        block_histogram(TraceBuffer(n_pes=1), block_words=3)


def test_chrome_trace_infers_pe_count():
    trace = generate_random_trace(300, n_pes=3, seed=8)
    doc = chrome_trace(observed_events(trace, 3))
    names = {
        r["args"]["name"]
        for r in doc["traceEvents"]
        if r["ph"] == "M" and r["name"] == "thread_name"
    }
    assert "PE2" in names


def network_event(seq, pe, cycle, stall):
    return ProtocolEvent(
        seq, seq, cycle, EventKind.NETWORK, pe, Op.R, Area.HEAP,
        AREA_BASE[Area.HEAP], f"->cluster1 fetch={stall}", stall,
    )


def test_network_events_get_their_own_process_lane():
    trace = generate_random_trace(200, n_pes=2, seed=3)
    events = observed_events(trace, 2)
    seq = len(events)
    events += [
        network_event(seq, 0, 100, 12),
        network_event(seq + 1, 1, 140, 9),
        network_event(seq + 2, 0, 180, 7),
    ]
    doc = chrome_trace(events, n_pes=2)
    validate_chrome_trace(doc)
    rows = doc["traceEvents"]
    slices = [r for r in rows if r.get("cat") == "network"]
    assert len(slices) == 3
    assert all(r["ph"] == "X" and r["pid"] == 2 for r in slices)
    first = slices[0]
    assert first["dur"] == 12
    assert first["ts"] == 100 - 12
    # Lazy metadata: one process row, one thread row per forwarding PE.
    metadata = [r for r in rows if r["ph"] == "M" and r["pid"] == 2]
    process = [r for r in metadata if r["name"] == "process_name"]
    threads = [r for r in metadata if r["name"] == "thread_name"]
    assert len(process) == 1
    assert process[0]["args"]["name"] == "inter-cluster network"
    assert {t["args"]["name"] for t in threads} == {
        "PE0 forwards", "PE1 forwards"
    }


def test_single_bus_trace_has_no_network_lane():
    trace = generate_random_trace(200, n_pes=2, seed=3)
    doc = chrome_trace(observed_events(trace, 2), n_pes=2)
    assert not any(r["pid"] == 2 for r in doc["traceEvents"])


def test_counter_events_merge_into_the_trace():
    trace = generate_random_trace(1000, n_pes=2, seed=6)
    sink = CollectorSink()
    _, windows = windowed_replay(
        trace, SimulationConfig(), n_pes=2,
        probe=ProtocolProbe(sink), window=256,
    )
    counters = counter_track_events(windows)
    doc = chrome_trace(sink.events, n_pes=2, counter_events=counters)
    validate_chrome_trace(doc)
    # Every prebuilt record — metadata and samples — lands verbatim.
    for record in counters:
        assert record in doc["traceEvents"]
    samples = [r for r in doc["traceEvents"] if r["ph"] == "C"]
    assert samples == [r for r in counters if r["ph"] == "C"]
    assert samples and all(r["pid"] == COUNTER_PID for r in samples)
