"""REPRO_CHECK_INVARIANTS debug mode and blocked-reference diagnostics."""

import pytest

from repro.core.config import SimulationConfig
from repro.core.replay import (
    DEFAULT_INVARIANT_INTERVAL,
    ReplayBlockedError,
    invariant_check_interval,
    replay,
)
from repro.trace.buffer import TraceBuffer
from repro.trace.events import AREA_BASE, Area, Op
from repro.trace.synthetic import generate_random_trace


@pytest.mark.parametrize("raw", [None, "0", "off", "no", "false", "", "none"])
def test_interval_disabled(monkeypatch, raw):
    if raw is None:
        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
    else:
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", raw)
    assert invariant_check_interval() is None


@pytest.mark.parametrize("raw", ["1", "on", "yes", "true", "ON"])
def test_interval_default_granularity(monkeypatch, raw):
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", raw)
    assert invariant_check_interval() == DEFAULT_INVARIANT_INTERVAL


def test_interval_explicit_period(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "500")
    assert invariant_check_interval() == 500
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "-3")
    assert invariant_check_interval() == 1  # clamped to at least 1
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "garbage")
    assert invariant_check_interval() == DEFAULT_INVARIANT_INTERVAL


@pytest.mark.parametrize(
    "raw, expected",
    [
        (" 8 ", 8),  # surrounding whitespace is stripped
        ("\t500\n", 500),
        (" OFF ", None),
        (" -7", 1),  # negative clamps to 1 even with whitespace
        ("-0", 1),  # not the literal "0": parses to 0, clamps to 1
        ("  ", None),  # all-whitespace strips to the empty string
        (" not a number ", DEFAULT_INVARIANT_INTERVAL),
        ("12.5", DEFAULT_INVARIANT_INTERVAL),  # floats are garbage too
        ("1e3", DEFAULT_INVARIANT_INTERVAL),
        ("0x10", DEFAULT_INVARIANT_INTERVAL),
    ],
)
def test_interval_edge_cases(monkeypatch, raw, expected):
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", raw)
    assert invariant_check_interval() == expected


def test_checked_replay_matches_fast_kernel():
    trace = generate_random_trace(2000, n_pes=4, seed=21)
    config = SimulationConfig()
    checked = replay(trace, config, check_invariants_every=100)
    assert checked.as_dict() == replay(trace, config).as_dict()


def test_env_toggle_routes_to_checked_loop(monkeypatch):
    trace = generate_random_trace(500, n_pes=2, seed=33)
    config = SimulationConfig()
    plain = replay(trace, config)
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "64")
    assert replay(trace, config).as_dict() == plain.as_dict()


def blocking_trace():
    """PE0 locks a word; PE1 then touches the same block (index 1)."""
    buffer = TraceBuffer(n_pes=2)
    address = AREA_BASE[Area.HEAP]
    buffer.append(0, Op.LR, Area.HEAP, address)
    buffer.append(1, Op.R, Area.HEAP, address)
    return buffer


def test_fast_kernel_blocked_error_carries_trace_position():
    with pytest.raises(ReplayBlockedError) as info:
        replay(blocking_trace(), SimulationConfig())
    error = info.value
    assert error.index == 1
    assert error.pe == 1
    assert error.op == Op.R
    assert error.area == Area.HEAP
    assert error.address == AREA_BASE[Area.HEAP]
    message = str(error)
    assert "trace index 1" in message
    assert "PE1" in message
    assert "heap" in message


def test_checked_loop_blocked_error_carries_trace_position():
    with pytest.raises(ReplayBlockedError) as info:
        replay(blocking_trace(), SimulationConfig(), check_invariants_every=1)
    assert info.value.index == 1


def test_machine_run_with_invariant_checking(monkeypatch):
    from repro.analysis.runner import run_benchmark

    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "100")
    result = run_benchmark("pascal", scale="tiny", n_pes=2)
    assert result.stats is not None
    assert result.stats.total_refs > 0
