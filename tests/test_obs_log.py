"""Logging setup: level mapping, idempotent configuration, naming."""

import io
import logging

from repro.obs.log import (
    ROOT_LOGGER,
    configure,
    get_logger,
    verbosity_to_level,
)


def test_verbosity_mapping():
    assert verbosity_to_level(0) == logging.WARNING
    assert verbosity_to_level(1) == logging.INFO
    assert verbosity_to_level(2) == logging.DEBUG
    assert verbosity_to_level(5) == logging.DEBUG
    assert verbosity_to_level(0, quiet=True) == logging.ERROR
    assert verbosity_to_level(2, quiet=True) == logging.ERROR


def test_get_logger_prefixes_package():
    assert get_logger("analysis.runner").name == "repro.analysis.runner"
    assert get_logger().name == ROOT_LOGGER
    assert get_logger("repro.core").name == "repro.core"


def test_configure_is_idempotent():
    logger = configure(1)
    count = len(logger.handlers)
    configure(2)
    configure(0, quiet=True)
    assert len(logger.handlers) == count
    assert logger.level == logging.ERROR
    assert logger.propagate is False


def test_messages_reach_the_configured_stream():
    stream = io.StringIO()
    configure(1, stream=stream)
    get_logger("unit.test").info("windowed %d", 42)
    assert "windowed 42" in stream.getvalue()
    assert "repro.unit.test" in stream.getvalue()


def test_debug_suppressed_at_info_level():
    stream = io.StringIO()
    configure(1, stream=stream)
    get_logger("unit.test").debug("hidden detail")
    assert "hidden detail" not in stream.getvalue()
