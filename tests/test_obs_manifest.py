"""Run provenance: config fingerprints, manifests, schema validation."""

import json

import pytest

from repro.core.config import CacheConfig, OptimizationConfig, SimulationConfig
from repro.obs.manifest import (
    build_manifest,
    config_fingerprint,
    git_sha,
    write_manifest,
)
from repro.obs.schema import SchemaError, validate_manifest


def test_fingerprint_is_stable_and_short():
    a = config_fingerprint(SimulationConfig())
    b = config_fingerprint(SimulationConfig())
    assert a == b
    assert len(a) == 16
    assert int(a, 16) >= 0  # hex


def test_fingerprint_distinguishes_configs():
    base = config_fingerprint(SimulationConfig())
    assert config_fingerprint(
        SimulationConfig(cache=CacheConfig(n_sets=128))
    ) != base
    assert config_fingerprint(
        SimulationConfig(opts=OptimizationConfig.none())
    ) != base
    assert config_fingerprint(
        SimulationConfig(protocol="illinois")
    ) != base


def test_build_manifest_is_schema_valid():
    manifest = build_manifest(
        config=SimulationConfig(),
        seed=7,
        trace_cache_key="v1-tri-small-8pe-seed7",
        wall_seconds=1.25,
        command="pytest",
        extra={"kind": "unit-test"},
    )
    validate_manifest(manifest)
    assert manifest["schema"] == "repro.obs/manifest/v1"
    assert manifest["seed"] == 7
    assert manifest["config_hash"] == config_fingerprint(SimulationConfig())
    assert manifest["extra"]["kind"] == "unit-test"
    assert manifest["python_version"].count(".") == 2


def test_manifest_without_config_still_validates():
    manifest = build_manifest()
    validate_manifest(manifest)
    assert manifest["config"] is None
    assert manifest["config_hash"] is None


def test_git_sha_in_this_checkout():
    sha = git_sha()
    # The test suite runs inside the repository, so a SHA must resolve.
    assert sha is not None
    assert len(sha) == 40
    int(sha, 16)


def test_write_manifest_round_trips(tmp_path):
    manifest = build_manifest(config=SimulationConfig(), seed=1)
    path = write_manifest(manifest, tmp_path / "run.manifest.json")
    loaded = json.loads(path.read_text())
    validate_manifest(loaded)
    assert loaded["config_hash"] == manifest["config_hash"]


def test_validate_manifest_rejects_wrong_schema():
    manifest = build_manifest()
    manifest["schema"] = "something/else"
    with pytest.raises(SchemaError, match="schema"):
        validate_manifest(manifest)


def test_validate_manifest_rejects_missing_key():
    manifest = build_manifest()
    del manifest["python_version"]
    with pytest.raises(SchemaError, match="python_version"):
        validate_manifest(manifest)


def test_benchmark_result_carries_manifest(tiny_workloads):
    result = tiny_workloads.result("pascal", 2)
    manifest = result.manifest
    assert manifest is not None
    validate_manifest(manifest)
    assert manifest["seed"] == 1
    assert manifest["trace_cache_key"] == tiny_workloads.cache_key("pascal", 2)
    assert manifest["extra"]["benchmark"] == "pascal"
    assert manifest["extra"]["n_pes"] == 2
    assert manifest["extra"]["reductions"] == result.machine.reductions
