"""Cycle-ledger metrics: registry, OpenMetrics rendering, the
sum-to-pe_cycles identity, and the Perfetto counter tracks."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.parallel import run_clustered
from repro.core.config import CacheConfig, SimulationConfig
from repro.core.protocol import codegen, protocol_names
from repro.core.replay import replay
from repro.obs.metrics import (
    COUNTER_PID,
    CycleLedger,
    LedgerError,
    MetricsRegistry,
    counter_track_events,
    cycle_ledger,
    escape_label_value,
    format_ledger,
    metrics_record,
)
from repro.obs.schema import SchemaError, validate_metrics
from repro.obs.windows import windowed_replay
from repro.trace.buffer import TraceBuffer
from repro.trace.synthetic import (
    AuroraTraceConfig,
    generate_aurora_trace,
    generate_random_trace,
)

requires_numpy = pytest.mark.skipif(
    not codegen.available(), reason="generated kernels need numpy"
)

KERNELS = ["interpreted"] + (["generated"] if codegen.available() else [])


def locky_trace(n_pes: int = 4) -> TraceBuffer:
    """A stream with real lock contention so lock_spin is non-zero."""
    return generate_aurora_trace(
        AuroraTraceConfig(n_pes=n_pes, steps_per_pe=150, seed=7)
    )


# ----------------------------------------------------------------------
# Registry / OpenMetrics
# ----------------------------------------------------------------------


def test_counter_accumulates_per_label_set():
    registry = MetricsRegistry()
    counter = registry.counter("repro_hits", "cache hits")
    counter.inc(3, area="heap")
    counter.inc(2, area="heap")
    counter.inc(5, area="goal")
    assert counter.value(area="heap") == 5
    assert counter.value(area="goal") == 5


def test_counter_rejects_negative_increment():
    counter = MetricsRegistry().counter("repro_hits", "h")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_registry_rejects_type_conflicts():
    registry = MetricsRegistry()
    registry.counter("repro_thing", "a thing")
    with pytest.raises(ValueError):
        registry.gauge("repro_thing", "now a gauge")


def test_registry_rejects_bad_metric_names():
    with pytest.raises(ValueError):
        MetricsRegistry().counter("Repro-Hits", "bad name")


def test_openmetrics_rendering_ends_with_eof_and_total_suffix():
    registry = MetricsRegistry()
    registry.counter("repro_refs", "references").inc(7, kind="read")
    registry.gauge("repro_depth", "queue depth").set(3)
    text = registry.render_openmetrics()
    assert text.endswith("# EOF\n")
    assert 'repro_refs_total{kind="read"} 7' in text
    assert "# TYPE repro_refs counter" in text
    assert "repro_depth 3" in text


def test_histogram_renders_cumulative_buckets():
    registry = MetricsRegistry()
    histogram = registry.histogram("repro_lat", "latency", buckets=(1, 10))
    for value in (0.5, 5, 50):
        histogram.observe(value)
    text = registry.render_openmetrics()
    assert 'repro_lat_bucket{le="1.0"} 1' in text
    assert 'repro_lat_bucket{le="10.0"} 2' in text
    assert 'repro_lat_bucket{le="+Inf"} 3' in text
    assert "repro_lat_count 3" in text


@pytest.mark.parametrize(
    "raw, escaped",
    [
        ('plain', 'plain'),
        ('a"b', 'a\\"b'),
        ("a\\b", "a\\\\b"),
        ("a\nb", "a\\nb"),
        ('\\"\n', '\\\\\\"\\n'),
    ],
)
def test_label_value_escaping(raw, escaped):
    assert escape_label_value(raw) == escaped


def test_escaped_labels_render_and_round_trip():
    registry = MetricsRegistry()
    registry.counter("repro_odd", "odd labels").inc(1, path='a"b\\c\nd')
    text = registry.render_openmetrics()
    assert 'path="a\\"b\\\\c\\nd"' in text


# ----------------------------------------------------------------------
# The cycle-ledger identity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("protocol", sorted(protocol_names()))
@pytest.mark.parametrize("kernel", KERNELS)
def test_ledger_identity_every_protocol_and_kernel(protocol, kernel):
    trace = generate_random_trace(6000, n_pes=4, seed=13)
    stats = replay(trace, SimulationConfig(protocol=protocol), kernel=kernel)
    ledger = cycle_ledger(stats)
    assert ledger.attributed_total == ledger.pe_cycles_total
    assert sum(ledger.entries.values()) == ledger.pe_cycles_total


@pytest.mark.parametrize("kernel", KERNELS)
def test_ledger_identity_with_lock_contention(kernel):
    stats = replay(locky_trace(), SimulationConfig(), kernel=kernel)
    ledger = cycle_ledger(stats)
    assert ledger.attributed_total == ledger.pe_cycles_total


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_pes=st.sampled_from([1, 2, 4, 8]),
    n_sets=st.sampled_from([16, 64, 256]),
)
def test_ledger_identity_random_traces(seed, n_pes, n_sets):
    trace = generate_random_trace(1500, n_pes=n_pes, seed=seed)
    config = SimulationConfig(cache=CacheConfig(n_sets=n_sets))
    for kernel in KERNELS:
        ledger = cycle_ledger(replay(trace, config, kernel=kernel))
        assert ledger.attributed_total == ledger.pe_cycles_total


def test_ledger_identity_clustered_includes_network_stall():
    trace = generate_random_trace(6000, n_pes=8, seed=5)
    config = SimulationConfig().with_clusters(2)
    clustered = run_clustered(trace, config, jobs=1)
    ledger = cycle_ledger(clustered.stats, network=clustered.network)
    assert ledger.attributed_total == ledger.pe_cycles_total
    assert ledger.entries["network_stall"] == clustered.network.stall_cycles
    assert ledger.entries["network_stall"] > 0


def test_tampered_stats_raise_ledger_error():
    stats = replay(generate_random_trace(2000, n_pes=2, seed=1))
    stats.hit_service_cycles += 1
    with pytest.raises(LedgerError):
        cycle_ledger(stats)
    # verify=False defers the check; verify() then raises.
    stats_ok = replay(generate_random_trace(2000, n_pes=2, seed=1))
    stats_ok.bus_wait_cycles += 3
    ledger = cycle_ledger(stats_ok, verify=False)
    with pytest.raises(LedgerError):
        ledger.verify()


def test_ledger_fractions_sum_to_one():
    stats = replay(generate_random_trace(3000, n_pes=4, seed=2))
    fractions = cycle_ledger(stats).fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_format_ledger_mentions_identity():
    stats = replay(generate_random_trace(2000, n_pes=2, seed=3))
    text = format_ledger(cycle_ledger(stats))
    assert "identity verified" in text
    assert "hit_service" in text


def test_ledger_to_registry_exports_buckets_with_labels():
    stats = replay(generate_random_trace(2000, n_pes=2, seed=4))
    ledger = cycle_ledger(stats)
    registry = MetricsRegistry()
    ledger.to_registry(registry, protocol="pim")
    text = registry.render_openmetrics()
    assert 'bucket="hit_service"' in text
    assert 'protocol="pim"' in text
    assert text.endswith("# EOF\n")


def test_metrics_record_passes_schema_and_tampering_fails():
    stats = replay(generate_random_trace(2000, n_pes=2, seed=6))
    record = metrics_record(cycle_ledger(stats))
    validate_metrics(record)
    broken = json.loads(json.dumps(record))
    broken["ledger"]["entries"]["hit_service"] += 1
    with pytest.raises(SchemaError):
        validate_metrics(broken)


# ----------------------------------------------------------------------
# Counter tracks
# ----------------------------------------------------------------------


def test_counter_track_events_sample_each_window():
    trace = generate_random_trace(4000, n_pes=2, seed=8)
    _, windows = windowed_replay(trace, window=1000)
    events = counter_track_events(windows)
    samples = [e for e in events if e["ph"] == "C"]
    assert samples, "expected counter samples"
    assert all(e["pid"] == COUNTER_PID for e in samples)
    # One sample per window per track, stamped at increasing cycles.
    by_name = {}
    for sample in samples:
        by_name.setdefault(sample["name"], []).append(sample["ts"])
    for timestamps in by_name.values():
        assert len(timestamps) == len(windows)
        assert timestamps == sorted(timestamps)


def test_counter_track_events_empty_windows():
    assert counter_track_events([]) == []
