"""Probe/sink layer: event emission, attach/detach, sink behaviour."""

import json

import pytest

from repro.core.config import SimulationConfig
from repro.core.replay import replay
from repro.core.system import PIMCacheSystem
from repro.obs.events import EVENT_KIND_NAMES, EventKind, ProtocolEvent
from repro.obs.probe import ProtocolProbe
from repro.obs.schema import SchemaError, validate_event, validate_jsonl
from repro.obs.sink import CollectorSink, JsonlSink, RingBufferSink
from repro.obs.windows import windowed_replay
from repro.trace.buffer import TraceBuffer
from repro.trace.events import AREA_BASE, FLAG_LOCK_CONTENDED, Area, Op


def observed_system(n_pes: int = 4):
    system = PIMCacheSystem(SimulationConfig(), n_pes)
    sink = CollectorSink()
    system.attach_probe(ProtocolProbe(sink))
    return system, sink


def events_of_kind(sink, kind):
    return [e for e in sink.events if e.kind == kind]


def test_miss_emits_transition_and_bus_events():
    system, sink = observed_system()
    system.access(0, Op.R, Area.HEAP, AREA_BASE[Area.HEAP])
    transitions = events_of_kind(sink, EventKind.TRANSITION)
    buses = events_of_kind(sink, EventKind.BUS)
    assert [t.detail for t in transitions] == ["INV->EC"]
    assert [b.detail for b in buses] == ["swap_in"]
    # The BUS event's value is the cycles held; its cycle stamp is when
    # the bus freed, so the slice [cycle - value, cycle] is the occupancy.
    assert buses[0].value > 0
    assert buses[0].cycle == system.bus_free_at


def test_hit_emits_nothing():
    system, sink = observed_system()
    address = AREA_BASE[Area.HEAP]
    system.access(0, Op.R, Area.HEAP, address)
    before = sink.emitted
    system.access(0, Op.R, Area.HEAP, address)
    assert sink.emitted == before


def test_dw_demotion_event():
    system, sink = observed_system()
    address = AREA_BASE[Area.HEAP]
    system.access(0, Op.R, Area.HEAP, address)  # EC copy: DW must demote
    system.access(0, Op.DW, Area.HEAP, address)
    demotions = events_of_kind(sink, EventKind.DEMOTION)
    assert [d.detail for d in demotions] == ["DW->W"]


def test_er_last_word_purge_event():
    system, sink = observed_system()
    base = AREA_BASE[Area.GOAL]
    block_words = system.config.cache.block_words
    for offset in range(block_words):
        system.access(0, Op.ER, Area.GOAL, base + offset)
    purges = events_of_kind(sink, EventKind.PURGE)
    assert len(purges) == 1
    assert purges[0].detail in ("clean", "dirty")


def test_lock_conflict_events():
    system, sink = observed_system()
    address = AREA_BASE[Area.HEAP]
    system.access(0, Op.LR, Area.HEAP, address)
    system.access(1, Op.LR, Area.HEAP, address)  # draws LH, busy-waits
    system.access(0, Op.U, Area.HEAP, address)  # finds waiter, UL
    locks = events_of_kind(sink, EventKind.LOCK)
    details = [e.detail for e in locks]
    assert "LH" in details
    assert "UL" in details
    lh = next(e for e in locks if e.detail == "LH")
    assert lh.pe == 1


def test_transition_events_on_invalidating_write():
    system, sink = observed_system()
    address = AREA_BASE[Area.HEAP]
    system.access(0, Op.R, Area.HEAP, address)
    system.access(1, Op.R, Area.HEAP, address)
    sink.events.clear()
    system.access(0, Op.W, Area.HEAP, address)  # S -> EM locally
    transitions = events_of_kind(sink, EventKind.TRANSITION)
    assert [t.detail for t in transitions] == ["S->EM"]


def test_detach_restores_uninstrumented_table():
    system, sink = observed_system()
    assert system._op_table is not system._base_op_table
    probe = system.detach_probe()
    assert probe is not None
    assert system._op_table is system._base_op_table
    assert system.probe is None
    before = sink.emitted
    system.access(0, Op.R, Area.HEAP, AREA_BASE[Area.HEAP])
    assert sink.emitted == before  # detached: no more events
    assert system.detach_probe() is None  # idempotent


def test_double_attach_rejected():
    system, _ = observed_system()
    with pytest.raises(RuntimeError, match="already attached"):
        system.attach_probe(ProtocolProbe(CollectorSink()))


def test_probe_cannot_serve_two_systems():
    probe = ProtocolProbe(CollectorSink())
    PIMCacheSystem(SimulationConfig(), 2).attach_probe(probe)
    with pytest.raises(RuntimeError, match="already attached"):
        PIMCacheSystem(SimulationConfig(), 2).attach_probe(probe)


def test_observed_replay_counters_match_fast_kernel(tiny_workloads):
    trace = tiny_workloads.trace("pascal", 2)
    plain = replay(trace, SimulationConfig(), n_pes=2)
    observed, _ = windowed_replay(
        trace, SimulationConfig(), n_pes=2, probe=ProtocolProbe(CollectorSink())
    )
    assert observed.as_dict() == plain.as_dict()


def test_event_ref_indices_track_trace_positions():
    buffer = TraceBuffer(n_pes=2)
    base = AREA_BASE[Area.HEAP]
    buffer.append(0, Op.R, Area.HEAP, base)           # ref 0: miss
    buffer.append(0, Op.R, Area.HEAP, base)           # ref 1: hit
    buffer.append(1, Op.R, Area.HEAP, base + 4096)    # ref 2: miss
    sink = CollectorSink()
    windowed_replay(buffer, n_pes=2, probe=ProtocolProbe(sink))
    assert {e.ref for e in sink.events} == {0, 2}


def test_ring_buffer_sheds_oldest():
    ring = RingBufferSink(capacity=4)
    for seq in range(10):
        ring.emit(ProtocolEvent(seq, seq, 0, EventKind.BUS, 0, 0, 0, 0, "x", 1))
    assert ring.emitted == 10
    assert ring.dropped == 6
    assert len(ring) == 4
    assert [e.seq for e in ring.events] == [6, 7, 8, 9]


def test_ring_buffer_rejects_silly_capacity():
    with pytest.raises(ValueError):
        RingBufferSink(capacity=0)


def test_jsonl_sink_writes_schema_valid_records(tmp_path):
    path = tmp_path / "events.jsonl"
    system = PIMCacheSystem(SimulationConfig(), 2)
    with JsonlSink(path) as sink:
        system.attach_probe(ProtocolProbe(sink))
        system.access(0, Op.R, Area.HEAP, AREA_BASE[Area.HEAP])
        system.access(1, Op.W, Area.GOAL, AREA_BASE[Area.GOAL])
        system.detach_probe()
    lines = path.read_text().splitlines()
    assert lines
    count = validate_jsonl(lines, validate_event)
    assert count == len(lines) == sink.emitted


def test_event_to_dict_and_format():
    event = ProtocolEvent(
        0, 7, 42, EventKind.TRANSITION, 1, Op.R, Area.HEAP, 0x10000000,
        "INV->EC", 3,
    )
    record = event.to_dict()
    validate_event(record)
    assert record["kind"] == "transition"
    assert record["op"] == "R"
    assert record["area"] == "heap"
    text = event.format()
    assert "PE1" in text and "INV->EC" in text


def test_validate_event_rejects_unknown_kind():
    record = ProtocolEvent(
        0, 0, 0, EventKind.BUS, 0, Op.R, Area.HEAP, 0, "swap_in", 13
    ).to_dict()
    record["kind"] = "bogus"
    with pytest.raises(SchemaError, match="unknown kind"):
        validate_event(record)


def test_kind_names_cover_every_kind():
    assert len(EVENT_KIND_NAMES) == len(EventKind)


def test_contended_trace_replays_lock_events_through_probe():
    # Captured trace order serializes the conflict: the loser's LR is
    # recorded after the winner's unlock, both carrying the flag.
    buffer = TraceBuffer(n_pes=2)
    address = AREA_BASE[Area.HEAP]
    buffer.append(0, Op.LR, Area.HEAP, address)
    buffer.append(0, Op.U, Area.HEAP, address, FLAG_LOCK_CONTENDED)
    buffer.append(1, Op.LR, Area.HEAP, address, FLAG_LOCK_CONTENDED)
    sink = CollectorSink()
    stats, _ = windowed_replay(buffer, n_pes=2, probe=ProtocolProbe(sink))
    assert stats.lh_responses == 1
    details = [e.detail for e in events_of_kind(sink, EventKind.LOCK)]
    assert "LH" in details and "UL" in details


def test_profile_warns_when_the_ring_drops_events(caplog):
    import logging

    from repro.obs.profile import profile_trace
    from repro.trace.synthetic import generate_random_trace

    trace = generate_random_trace(2000, n_pes=2, seed=12)
    repro_logger = logging.getLogger("repro")
    propagate = repro_logger.propagate
    repro_logger.propagate = True  # the CLI may have detached it
    try:
        with caplog.at_level(logging.WARNING, logger="repro.obs.profile"):
            result = profile_trace(trace, event_capacity=16)
    finally:
        repro_logger.propagate = propagate
    assert result.events_dropped > 0
    warnings = [
        r for r in caplog.records if r.levelno == logging.WARNING
    ]
    assert any("dropped" in r.getMessage() for r in warnings)
    # The manifest still accounts for the loss exactly.
    extra = result.manifest["extra"]
    assert extra["events_dropped"] == result.events_dropped
    assert extra["events_emitted"] == result.events_emitted


def test_profile_quiet_when_nothing_dropped(caplog):
    import logging

    from repro.obs.profile import profile_trace
    from repro.trace.synthetic import generate_random_trace

    trace = generate_random_trace(300, n_pes=2, seed=12)
    repro_logger = logging.getLogger("repro")
    propagate = repro_logger.propagate
    repro_logger.propagate = True
    try:
        with caplog.at_level(logging.WARNING, logger="repro.obs.profile"):
            result = profile_trace(trace, event_capacity=65536)
    finally:
        repro_logger.propagate = propagate
    assert result.events_dropped == 0
    assert not [r for r in caplog.records if r.levelno >= logging.WARNING]
