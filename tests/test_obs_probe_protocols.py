"""Observability across the protocol registry: probe attach/detach on
every registered protocol, protocol-tagged events, and protocol
provenance in manifests and bench records."""

import pytest

from repro.core.config import SimulationConfig
from repro.core.protocol import protocol_names
from repro.core.system import PIMCacheSystem
from repro.obs.events import ProtocolEvent
from repro.obs.manifest import build_manifest
from repro.obs.probe import ProtocolProbe
from repro.obs.schema import validate_event, validate_manifest
from repro.obs.sink import CollectorSink
from repro.obs.windows import windowed_replay
from repro.trace.synthetic import generate_random_trace


@pytest.mark.parametrize("protocol", protocol_names())
def test_probe_attach_detach_round_trip(protocol):
    """Attach -> replay -> detach on each protocol: events flow while
    attached, the restored table is object-identical to the
    uninstrumented one, and detaching stops the stream."""
    system = PIMCacheSystem(SimulationConfig(protocol=protocol), 4)
    base_table = system._op_table
    assert base_table is system._base_op_table
    sink = CollectorSink()
    probe = ProtocolProbe(sink)
    system.attach_probe(probe)
    assert system._op_table is not base_table
    buffer = generate_random_trace(800, n_pes=4, seed=7)
    for pe, op, area, addr, flags in zip(*buffer.columns()):
        system.access(pe, op, area, addr, 0, flags)
    assert sink.events, f"no events observed under {protocol!r}"
    assert system.detach_probe() is probe
    # The exact pre-attach table object is restored, not a rebuild.
    assert system._op_table is base_table
    emitted = sink.emitted
    for pe, op, area, addr, flags in zip(*buffer.columns()):
        system.access(pe, op, area, addr, 0, flags)
    assert sink.emitted == emitted


@pytest.mark.parametrize("protocol", protocol_names())
def test_events_carry_protocol_name(protocol):
    buffer = generate_random_trace(400, n_pes=2, seed=9)
    sink = CollectorSink()
    windowed_replay(
        buffer,
        SimulationConfig(protocol=protocol),
        n_pes=2,
        probe=ProtocolProbe(sink),
    )
    assert sink.events
    assert all(event.protocol == protocol for event in sink.events)
    record = sink.events[0].to_dict()
    validate_event(record)
    assert record["protocol"] == protocol


def test_hand_built_events_default_to_unattributed():
    from repro.obs.events import EventKind
    from repro.trace.events import Area, Op

    event = ProtocolEvent(
        0, 0, 0, EventKind.BUS, 0, Op.R, Area.HEAP, 0, "swap_in", 13
    )
    assert event.protocol == ""
    record = event.to_dict()
    assert "protocol" not in record
    validate_event(record)


@pytest.mark.parametrize("protocol", protocol_names())
def test_manifest_records_protocol(protocol):
    manifest = build_manifest(config=SimulationConfig(protocol=protocol))
    validate_manifest(manifest)
    assert manifest["protocol"] == protocol
    assert manifest["config"]["protocol"] == protocol


def test_manifest_without_config_has_null_protocol():
    manifest = build_manifest()
    validate_manifest(manifest)
    assert manifest["protocol"] is None


def test_bench_records_carry_protocol():
    from repro.analysis.bench import hot_trace, run_bench

    report = run_bench(quick=True, repeats=1)
    for entry in report["workloads"].values():
        assert entry["protocol"] == "pim"
    assert report["manifest"]["protocol"] == "pim"
    assert len(hot_trace(1000)) == 1000
