"""Property: sharded replay + merge is counter-for-counter exact.

:func:`~repro.analysis.parallel.run_sweep` style workers replay
independent traces and fold the parts with :meth:`SystemStats.merge`.
These tests pin the merge semantics: every counter and matrix sums,
``lock_dir_max_occupancy`` takes the maximum (a high-water mark), and
``pe_cycles`` adds element-wise with zero-padding when PE counts differ.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import SimulationConfig
from repro.core.replay import replay
from repro.core.stats import N_AREAS, N_OPS, SystemStats
from repro.trace.buffer import TraceBuffer
from repro.trace.synthetic import generate_random_trace


def shard(buffer: TraceBuffer, cuts):
    """Split a trace at the given sorted cut indices."""
    columns = list(zip(*buffer.columns()))
    bounds = [0] + list(cuts) + [len(columns)]
    shards = []
    for lo, hi in zip(bounds, bounds[1:]):
        part = TraceBuffer(n_pes=buffer.n_pes)
        for pe, op, area, addr, flags in columns[lo:hi]:
            part.append(pe, op, area, addr, flags)
        shards.append(part)
    return shards


def manual_fold(parts):
    """Independent reference fold of the documented merge semantics."""
    n_pes = max(p.n_pes for p in parts)
    expected = {
        "refs": [
            [sum(p.refs[a][o] for p in parts) for o in range(N_OPS)]
            for a in range(N_AREAS)
        ],
        "hits": [
            [sum(p.hits[a][o] for p in parts) for o in range(N_OPS)]
            for a in range(N_AREAS)
        ],
        "pattern_counts": [
            sum(p.pattern_counts[i] for p in parts)
            for i in range(len(parts[0].pattern_counts))
        ],
        "pattern_cycles": [
            sum(p.pattern_cycles[i] for p in parts)
            for i in range(len(parts[0].pattern_cycles))
        ],
        "bus_cycles_by_area": [
            sum(p.bus_cycles_by_area[a] for p in parts)
            for a in range(N_AREAS)
        ],
        "lock_dir_max_occupancy": max(
            p.lock_dir_max_occupancy for p in parts
        ),
        "pe_cycles": [
            sum(p.pe_cycles[pe] for p in parts if pe < p.n_pes)
            for pe in range(n_pes)
        ],
    }
    for name in SystemStats._SUM_FIELDS:
        expected[name] = sum(getattr(p, name) for p in parts)
    return expected


def assert_matches_fold(merged, parts):
    expected = manual_fold(parts)
    assert merged.refs == expected["refs"]
    assert merged.hits == expected["hits"]
    assert merged.pattern_counts == expected["pattern_counts"]
    assert merged.pattern_cycles == expected["pattern_cycles"]
    assert merged.bus_cycles_by_area == expected["bus_cycles_by_area"]
    assert merged.lock_dir_max_occupancy == expected["lock_dir_max_occupancy"]
    assert merged.pe_cycles == expected["pe_cycles"]
    for name in SystemStats._SUM_FIELDS:
        assert getattr(merged, name) == expected[name], name


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    n_refs=st.integers(min_value=10, max_value=600),
    data=st.data(),
)
def test_sharded_replay_merges_to_manual_fold(seed, n_refs, data):
    trace = generate_random_trace(n_refs, n_pes=4, seed=seed)
    n_cuts = data.draw(st.integers(min_value=0, max_value=4))
    cuts = sorted(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n_refs),
                min_size=n_cuts,
                max_size=n_cuts,
            )
        )
    )
    parts = [
        replay(piece, SimulationConfig())
        for piece in shard(trace, cuts)
        if len(piece)
    ]
    merged = SystemStats.merged(parts)
    assert_matches_fold(merged, parts)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_merge_is_grouping_invariant(seed):
    trace = generate_random_trace(300, n_pes=4, seed=seed)
    parts = [
        replay(piece, SimulationConfig())
        for piece in shard(trace, [100, 200])
    ]
    all_at_once = SystemStats.merged(parts)
    pairwise = SystemStats.merged(
        [SystemStats.merged(parts[:2]), SystemStats.merged(parts[2:])]
    )
    assert all_at_once.as_dict() == pairwise.as_dict()


def test_merge_zero_pads_differing_pe_counts():
    narrow = SystemStats(2)
    narrow.pe_cycles = [10, 20]
    narrow.lock_dir_max_occupancy = 3
    wide = SystemStats(4)
    wide.pe_cycles = [1, 2, 3, 4]
    wide.lock_dir_max_occupancy = 2
    merged = SystemStats.merged([narrow, wide])
    assert merged.n_pes == 4
    assert merged.pe_cycles == [11, 22, 3, 4]
    assert merged.lock_dir_max_occupancy == 3
    # And in the other direction (wide first).
    merged = SystemStats.merged([wide, narrow])
    assert merged.pe_cycles == [11, 22, 3, 4]


def test_lock_counters_survive_sharded_merge():
    # A trace with real lock traffic, split mid-stream.
    trace = generate_random_trace(400, n_pes=4, seed=123)
    whole = replay(trace, SimulationConfig())
    parts = [
        replay(piece, SimulationConfig()) for piece in shard(trace, [137])
    ]
    merged = SystemStats.merged(parts)
    # Reference histograms are position-independent, so they must agree
    # with the unsharded run exactly (cache state does not change what
    # was *issued*, only hits/misses and traffic).
    assert merged.refs == whole.refs
    assert merged.total_refs == whole.total_refs
