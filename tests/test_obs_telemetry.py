"""Sweep-fleet telemetry: stall detection with injected clocks, the
collector, and heartbeat-streaming sweeps staying counter-identical."""

import logging
import queue

import pytest

from repro.analysis.parallel import SweepPool, run_sweep, run_sweep_report
from repro.core.config import CacheConfig, SimulationConfig
from repro.obs.telemetry import (
    HEARTBEAT_SCHEMA,
    StallDetector,
    SweepTelemetry,
    TelemetryCollector,
    format_heartbeat,
    heartbeat,
)
from repro.trace.synthetic import generate_random_trace


def sweep_grid(points: int = 3):
    return [
        SimulationConfig(cache=CacheConfig(n_sets=64 << i))
        for i in range(points)
    ]


# ----------------------------------------------------------------------
# StallDetector — pure, driven by synthetic timestamps
# ----------------------------------------------------------------------


def test_detector_quiet_worker_stalls_once():
    detector = StallDetector(interval_seconds=1.0, misses=3)
    detector.observe(7, now=0.0)
    assert detector.stalled(now=3.0) == []  # exactly at deadline: not yet
    assert detector.stalled(now=3.1) == [7]
    assert detector.stalled(now=10.0) == []  # same episode, reported once
    assert detector.stall_events == 1


def test_detector_recovery_rearms_the_report():
    detector = StallDetector(interval_seconds=1.0, misses=2)
    detector.observe(1, now=0.0)
    assert detector.stalled(now=5.0) == [1]
    detector.observe(1, now=6.0)  # heartbeat arrives: recovered
    assert detector.stalled(now=6.5) == []
    assert detector.stalled(now=9.0) == [1]  # stuck again: new episode
    assert detector.stall_events == 2


def test_detector_forget_stops_watching():
    detector = StallDetector(interval_seconds=1.0, misses=1)
    detector.observe(2, now=0.0)
    detector.forget(2)
    assert detector.stalled(now=100.0) == []


def test_detector_reports_multiple_workers_sorted():
    detector = StallDetector(interval_seconds=1.0, misses=1)
    detector.observe(9, now=0.0)
    detector.observe(3, now=0.0)
    assert detector.stalled(now=2.0) == [3, 9]


def test_detector_rejects_bad_parameters():
    with pytest.raises(ValueError):
        StallDetector(interval_seconds=0)
    with pytest.raises(ValueError):
        StallDetector(misses=0)


# ----------------------------------------------------------------------
# TelemetryCollector
# ----------------------------------------------------------------------


def test_collector_tracks_latest_and_completions():
    source = queue.Queue()
    seen = []
    collector = TelemetryCollector(source, on_heartbeat=seen.append)
    collector.handle(heartbeat(1, 0, 0, 0, 100, 400, 50.0, 0.25))
    collector.handle(heartbeat(1, 1, 0, 0, 400, 400, 60.0, 0.25, done=True))
    collector.handle(heartbeat(2, 0, 1, 0, 10, 400, 5.0, 0.5))
    assert collector.heartbeats == 3
    assert collector.points_completed == 1
    assert collector.latest[1]["done"] is True
    assert len(seen) == 3
    progress = collector.progress()
    assert progress["workers"] == 2
    assert progress["refs_done"] == 410
    summary = collector.summary()
    assert summary["heartbeats"] == 3
    assert summary["points_completed"] == 1


def test_collector_drain_folds_queued_records():
    source = queue.Queue()
    collector = TelemetryCollector(source)
    source.put(heartbeat(1, 0, 0, 0, 5, 10, 1.0, 0.0))
    source.put(None)  # sentinel is skipped, not folded
    source.put(heartbeat(1, 1, 0, 0, 10, 10, 1.0, 0.0, done=True))
    collector.drain()
    assert collector.heartbeats == 2
    assert collector.points_completed == 1


def test_collector_warns_on_stall(caplog):
    clock = [0.0]
    source = queue.Queue()
    collector = TelemetryCollector(
        source,
        detector=StallDetector(interval_seconds=1.0, misses=2),
        clock=lambda: clock[0],
    )
    collector.handle(heartbeat(5, 0, 0, 0, 1, 10, 1.0, 0.0))
    clock[0] = 10.0
    repro_logger = logging.getLogger("repro")
    propagate = repro_logger.propagate
    repro_logger.propagate = True  # the CLI may have detached it
    try:
        with caplog.at_level(logging.WARNING, logger="repro.obs.telemetry"):
            newly = collector.check_stalls()
    finally:
        repro_logger.propagate = propagate
    assert newly == [5]
    assert any("worker 5" in message for message in caplog.messages)


def test_heartbeat_record_shape_and_formatting():
    record = heartbeat(3, 2, 1, 0, 2048, 4096, 12345.6, 0.125)
    assert record["schema"] == HEARTBEAT_SCHEMA
    line = format_heartbeat(record)
    assert "worker 3" in line and "point 1" in line and "50.0%" in line
    done = heartbeat(3, 3, 1, 1, 4096, 4096, 1.0, 0.125, done=True)
    assert "[done]" in format_heartbeat(done)


# ----------------------------------------------------------------------
# End-to-end sweeps with telemetry
# ----------------------------------------------------------------------


def test_serial_telemetry_sweep_identical_and_streams():
    trace = generate_random_trace(12_000, n_pes=4, seed=21)
    configs = sweep_grid()
    plain = [s.as_dict() for s in run_sweep(trace, configs, jobs=1)]
    records = []
    with SweepTelemetry(
        interval_seconds=0.001, chunk_refs=4096,
        on_heartbeat=records.append, use_processes=False,
    ) as telemetry:
        with SweepPool(trace, jobs=1, telemetry=telemetry) as pool:
            streamed = [s.as_dict() for s in pool.map(configs)]
        summary = telemetry.summary()
    assert streamed == plain
    assert summary["points_completed"] == len(configs)
    assert summary["heartbeats"] >= len(configs)  # at least one done each
    done = [r for r in records if r["done"]]
    assert len(done) == len(configs)
    assert {r["point"] for r in done} == {0, 1, 2}
    for record in records:
        assert record["schema"] == HEARTBEAT_SCHEMA
        assert 0 <= record["refs_done"] <= record["refs_total"] == len(trace)


def test_pooled_telemetry_sweep_identical_with_manifest_summary():
    trace = generate_random_trace(8_000, n_pes=4, seed=22)
    configs = sweep_grid(2)
    plain = [s.as_dict() for s in run_sweep(trace, configs, jobs=1)]
    with SweepTelemetry(interval_seconds=0.001, chunk_refs=2048) as telemetry:
        report = run_sweep_report(trace, configs, jobs=2, telemetry=telemetry)
    assert [p["stats"] for p in report["points"]] == plain
    summary = report["manifest"]["extra"]["telemetry"]
    assert summary["points_completed"] == len(configs)
    assert summary["heartbeats"] >= len(configs)


def test_empty_trace_sweep_emits_done_heartbeat():
    trace = generate_random_trace(0, n_pes=2, seed=1)
    with SweepTelemetry(
        interval_seconds=0.001, chunk_refs=64, use_processes=False
    ) as telemetry:
        with SweepPool(trace, jobs=1, telemetry=telemetry) as pool:
            pool.map(sweep_grid(1))
        summary = telemetry.summary()
    assert summary["points_completed"] == 1


def test_telemetry_rejects_bad_chunk():
    with pytest.raises(ValueError):
        SweepTelemetry(chunk_refs=0)
