"""Windowed metrics: bucketing edge cases and aggregate consistency."""

import json

import pytest

from repro.core.config import SimulationConfig
from repro.core.replay import ReplayBlockedError, replay
from repro.obs.schema import validate_jsonl, validate_window
from repro.obs.windows import (
    WindowedMetrics,
    windowed_replay,
    write_windows_jsonl,
)
from repro.trace.buffer import TraceBuffer
from repro.trace.events import AREA_BASE, Area, Op
from repro.trace.synthetic import generate_random_trace


def simple_trace(n_refs: int, n_pes: int = 2) -> TraceBuffer:
    """A deterministic mixed hit/miss stream of exactly *n_refs*."""
    buffer = TraceBuffer(n_pes=n_pes)
    base = AREA_BASE[Area.HEAP]
    for i in range(n_refs):
        pe = i % n_pes
        # Alternate a striding miss-heavy address with a hot word.
        address = base + (i * 64 if i % 3 else pe)
        buffer.append(pe, Op.R if i % 2 else Op.W, Area.HEAP, address)
    return buffer


def test_remainder_trace_gets_a_short_final_window():
    trace = simple_trace(10)
    _, windows = windowed_replay(trace, window=4)
    assert [w.refs for w in windows] == [4, 4, 2]
    assert [w.start for w in windows] == [0, 4, 8]
    assert [w.index for w in windows] == [0, 1, 2]


def test_exact_multiple_has_no_empty_trailing_window():
    trace = simple_trace(12)
    _, windows = windowed_replay(trace, window=4)
    assert [w.refs for w in windows] == [4, 4, 4]


def test_window_larger_than_trace_yields_one_window():
    trace = simple_trace(5)
    _, windows = windowed_replay(trace, window=100)
    assert len(windows) == 1
    assert windows[0].refs == 5


def test_empty_trace_yields_no_windows():
    stats, windows = windowed_replay(TraceBuffer(n_pes=2), window=4)
    assert windows == []
    assert stats.total_refs == 0


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        windowed_replay(simple_trace(4), window=0)


def test_additive_fields_sum_to_aggregate():
    trace = generate_random_trace(3000, n_pes=4, seed=9)
    stats, windows = windowed_replay(trace, window=256)
    assert sum(w.refs for w in windows) == stats.total_refs
    assert sum(w.hits for w in windows) == stats.total_hits
    assert sum(w.misses for w in windows) == stats.total_refs - stats.total_hits
    assert sum(w.bus_cycles for w in windows) == stats.bus_cycles_total
    assert (
        sum(w.memory_busy_cycles for w in windows) == stats.memory_busy_cycles
    )
    assert sum(w.lh_responses for w in windows) == stats.lh_responses
    for area in range(len(windows[0].refs_by_area)):
        assert sum(w.refs_by_area[area] for w in windows) == sum(
            stats.refs[area]
        )
        assert sum(w.bus_cycles_by_area[area] for w in windows) == (
            stats.bus_cycles_by_area[area]
        )
    for pe in range(4):
        assert sum(w.pe_cycles[pe] for w in windows) == stats.pe_cycles[pe]


def test_per_window_ratios_are_consistent():
    trace = generate_random_trace(2000, n_pes=2, seed=4)
    _, windows = windowed_replay(trace, window=300)
    for window in windows:
        assert window.misses == window.refs - window.hits
        assert window.miss_ratio == pytest.approx(window.misses / window.refs)
        if window.cycles > 0:
            assert window.bus_utilization == pytest.approx(
                window.bus_cycles / window.cycles
            )


def test_windowed_stats_match_fast_replay_exactly():
    trace = generate_random_trace(5000, n_pes=4, seed=11)
    config = SimulationConfig()
    windowed_stats, _ = windowed_replay(trace, config, window=512)
    assert windowed_stats.as_dict() == replay(trace, config).as_dict()


def test_blocked_reference_reports_trace_index():
    buffer = TraceBuffer(n_pes=2)
    address = AREA_BASE[Area.HEAP]
    buffer.append(0, Op.LR, Area.HEAP, address)
    buffer.append(1, Op.R, Area.HEAP, address)  # remotely held lock
    with pytest.raises(ReplayBlockedError) as info:
        windowed_replay(buffer, n_pes=2, window=4)
    assert info.value.index == 1
    assert info.value.pe == 1


def test_close_window_discards_zero_ref_delta(system):
    metrics = WindowedMetrics(system.stats, window=4)
    assert metrics.close_window() is None
    system.access(0, Op.R, Area.HEAP, AREA_BASE[Area.HEAP])
    window = metrics.close_window()
    assert window is not None and window.refs == 1


def test_windows_jsonl_round_trip_validates(tmp_path):
    trace = simple_trace(10)
    _, windows = windowed_replay(trace, window=4)
    path = write_windows_jsonl(windows, tmp_path / "w.jsonl")
    lines = path.read_text().splitlines()
    assert validate_jsonl(lines, validate_window) == 3
    first = json.loads(lines[0])
    assert first["schema"] == "repro.obs/window/v1"
    assert first["refs"] == 4


def test_kernel_tier_matches_access_driven_windows_exactly():
    from repro.core.protocol import codegen

    trace = generate_random_trace(5000, n_pes=4, seed=17)
    config = SimulationConfig()
    base_stats, base_windows = windowed_replay(trace, config, window=512)
    kernels = ["interpreted"] + (
        ["generated", "auto"] if codegen.available() else []
    )
    for kernel in kernels:
        stats, windows = windowed_replay(
            trace, config, window=512, kernel=kernel
        )
        assert stats.as_dict() == base_stats.as_dict(), kernel
        assert [w.to_dict() for w in windows] == [
            w.to_dict() for w in base_windows
        ], kernel
