"""The four paper benchmarks: correctness against their Python oracles
and the workload signatures the paper attributes to each."""

import pytest

from repro.core.config import MachineConfig
from repro.machine.machine import KL1Machine
from repro.programs import Benchmark, get, names
from repro.programs import pascal, puzzle, semi, tri
from repro.trace.events import Area


def run_tiny(name, n_pes=4):
    benchmark = get(name)
    machine = KL1Machine(benchmark.source, MachineConfig(n_pes=n_pes, seed=1))
    result = machine.run(benchmark.query("tiny"))
    return benchmark, result


def test_registry_lists_the_papers_benchmarks():
    assert names() == ("tri", "semi", "puzzle", "pascal")
    for name in names():
        assert isinstance(get(name), Benchmark)
    with pytest.raises(KeyError):
        get("quicksort")


def test_unknown_scale_rejected():
    with pytest.raises(KeyError):
        get("tri").query("enormous")


@pytest.mark.parametrize("name", names())
def test_tiny_answers_match_oracle(name):
    benchmark, result = run_tiny(name)
    assert result.answer[benchmark.answer_var] == benchmark.expected["tiny"]


@pytest.mark.parametrize("name", names())
@pytest.mark.parametrize("n_pes", [1, 2, 8])
def test_answers_independent_of_pe_count(name, n_pes):
    benchmark = get(name)
    machine = KL1Machine(benchmark.source, MachineConfig(n_pes=n_pes, seed=2))
    result = machine.run(benchmark.query("tiny"))
    assert result.answer[benchmark.answer_var] == benchmark.expected["tiny"]


class TestTri:
    def test_thirty_six_jump_lines(self):
        assert len(tri.moves()) == 36

    def test_moves_are_valid_triples(self):
        for origin, over, target in tri.moves():
            assert {origin, over, target} <= set(range(15))
            assert len({origin, over, target}) == 3

    def test_full_game_reference_spot_check(self):
        # Two opening jumps exist from the hole-at-corner position.
        assert tri.reference(13) == 2

    def test_search_is_fanout_heavy(self):
        _, result = run_tiny("tri")
        # Many small tasks spread over the PEs (the paper's load story).
        assert sum(1 for count in result.pe_reductions if count > 0) >= 3


class TestSemi:
    def test_reference_closure(self):
        # {2,3} under multiplication mod 23 closes over 11 elements
        # within two rounds (the tiny preset).
        assert semi.reference(23, 2) == 11

    def test_closure_eventually_fixpoints(self):
        assert semi.reference(23, 10) == semi.reference(23, 6)

    def test_read_heavy_signature(self):
        _, result = run_tiny("semi")
        mix = result.stats.op_ref_percentages(data_only=True)
        assert mix["R"] > mix["W"]  # Semi is the read-heavy benchmark

    def test_suspension_heavy(self):
        _, result = run_tiny("semi")
        assert result.suspensions > 0


class TestPuzzle:
    def test_reference_tilings(self):
        assert puzzle.reference(2, 2) == 2
        assert puzzle.reference(3, 4) == 11
        assert puzzle.reference(4, 4) == 36

    def test_odd_board_has_no_tilings(self):
        assert puzzle.reference(3, 3) == 0

    def test_heap_heavy_signature(self):
        # The full heap-dominance claim (81 % of bus cycles in the paper,
        # ~89 % here) is asserted at realistic scale in benchmarks/; the
        # tiny board still shows substantial structure-copy traffic.
        _, result = run_tiny("puzzle")
        shares = result.stats.area_ref_percentages()
        assert shares[Area.HEAP] > 20
        assert shares[Area.HEAP] > shares[Area.SUSPENSION]
        assert shares[Area.HEAP] > shares[Area.COMMUNICATION]


class TestPascal:
    def test_reference_is_power_of_two(self):
        assert pascal.reference(12) == 2**11

    def test_pipeline_suspends(self):
        _, result = run_tiny("pascal")
        assert result.suspensions > 0

    def test_big_integers_supported(self):
        benchmark = get("pascal")
        machine = KL1Machine(benchmark.source, MachineConfig(n_pes=2, seed=1))
        result = machine.run("main(70, Sum)")
        assert result.answer["Sum"] == 2**69  # exceeds 64-bit
