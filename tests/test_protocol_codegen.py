"""The generated replay kernels (repro.core.protocol.codegen).

The heavy identity artillery — goldens and the hypothesis cross-path
property, both parametrized over kernels — lives in
``test_protocol_identity.py``.  This file covers the codegen machinery
itself: source emission and caching, the envelope/fallback contract,
both mirror schemes (dense list and raw-key dict), run collapsing,
warm-system reuse, and error parity with the interpreted path.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import SimulationConfig
from repro.core.protocol import codegen, get_protocol, protocol_names
from repro.core.replay import ReplayBlockedError, replay
from repro.core.system import PIMCacheSystem
from repro.trace.buffer import TraceBuffer
from repro.trace.events import AREA_BASE, Area, Op
from repro.trace.synthetic import generate_random_trace

requires_numpy = pytest.mark.skipif(
    not codegen.available(), reason="generated kernels need numpy"
)


# ---------------------------------------------------------------------------
# Source emission and the compile cache.


class TestKernelSource:
    def test_silent_store_chain_is_compiled_in(self):
        source = codegen.kernel_source(get_protocol("pim"))
        # PIM stores silently on EC/EM: both states appear as is-tests
        # in the write branch, and the branch itself exists.
        assert "elif k < PURGE_TAG:" in source
        assert "if st is _EM:" in source
        assert "if st is _EC:" in source

    def test_write_through_family_has_no_write_fast_path(self):
        # No silent stores -> every store needs the bus -> W/DW cells
        # classify slow and no write branch is emitted at all.
        for name in ("write_through", "write_update"):
            source = codegen.kernel_source(get_protocol(name))
            assert "write_h = dw_h = None" in source
            assert "st = line.state" not in source

    @pytest.mark.parametrize("protocol", protocol_names())
    def test_source_compiles_standalone(self, protocol):
        source = codegen.kernel_source(get_protocol(protocol))
        compile(source, "<test>", "exec")  # must not raise

    def test_kernel_cached_by_spec_identity(self):
        spec = get_protocol("pim")
        kernel = codegen.get_kernel(spec)
        assert codegen.get_kernel(spec) is kernel
        # A structurally equal but distinct spec object (a re-registered
        # or temporarily shadowed protocol) must recompile, not reuse.
        clone = dataclasses.replace(spec)
        assert codegen.get_kernel(clone) is not kernel


# ---------------------------------------------------------------------------
# Envelope: out-of-envelope (system, trace) pairs decline, and the
# replay() caller falls back to the interpreted kernel.


@requires_numpy
class TestEnvelope:
    def test_track_data_declines(self):
        import numpy

        config = SimulationConfig(track_data=True)
        system = PIMCacheSystem(config, 2)
        kernel = codegen.get_kernel(system.protocol_spec)
        buffer = generate_random_trace(50, n_pes=2, seed=1)
        assert kernel(system, buffer, numpy) is None

    def test_track_data_replay_falls_back_and_matches(self):
        buffer = generate_random_trace(800, n_pes=2, seed=2)
        tracked = SimulationConfig(track_data=True)
        plain = SimulationConfig()
        generated = replay(buffer, tracked, n_pes=2, kernel="generated")
        interpreted = replay(buffer, plain, n_pes=2, kernel="interpreted")
        assert generated.as_dict() == interpreted.as_dict()

    def test_negative_address_declines_but_replay_agrees(self):
        import numpy

        buffer = generate_random_trace(400, n_pes=2, seed=3)
        buffer._addr[7] = -buffer._addr[7]
        system = PIMCacheSystem(SimulationConfig(), 2)
        kernel = codegen.get_kernel(system.protocol_spec)
        assert kernel(system, buffer, numpy) is None
        generated = replay(buffer, SimulationConfig(), n_pes=2,
                           kernel="generated")
        interpreted = replay(buffer, SimulationConfig(), n_pes=2,
                             kernel="interpreted")
        assert generated.as_dict() == interpreted.as_dict()

    def test_out_of_range_op_raises_like_interpreted(self):
        buffer = generate_random_trace(100, n_pes=2, seed=4)
        buffer._op[3] = 10  # >= N_OPS
        with pytest.raises(ValueError, match="out-of-range op or area"):
            replay(buffer, SimulationConfig(), n_pes=2, kernel="generated")
        with pytest.raises(ValueError, match="out-of-range op or area"):
            replay(buffer, SimulationConfig(), n_pes=2, kernel="interpreted")

    def test_empty_trace_returns_zero_stats(self):
        stats = replay(TraceBuffer(2), SimulationConfig(), n_pes=2,
                       kernel="generated")
        assert stats.total_refs == 0


# ---------------------------------------------------------------------------
# Behavior details: mirror schemes, run collapsing, warm systems,
# blocked references.


@requires_numpy
class TestGeneratedBehavior:
    def test_dense_scheme_matches_interpreted(self):
        buffer = generate_random_trace(5_000, n_pes=4, seed=5)
        config = SimulationConfig()
        generated = replay(buffer, config, n_pes=4, kernel="generated")
        interpreted = replay(buffer, config, n_pes=4, kernel="interpreted")
        assert generated.as_dict() == interpreted.as_dict()
        # The random trace's working set is small: preprocessing must
        # have taken the dense-renumbered flat-list mirror.
        assert codegen._PREP_CACHE is not None
        assert codegen._PREP_CACHE[3][9] is not None  # flat_size

    def test_dict_scheme_matches_interpreted(self):
        # Enough PEs and distinct blocks to push the dense key space
        # past MAX_FLAT_LIST, forcing the raw-key dict mirror.
        n_pes, n_blocks = 64, 8_192
        buffer = TraceBuffer(n_pes=n_pes)
        base = AREA_BASE[Area.HEAP]
        for sweep in range(2):  # second pass re-reads: hits via the dict
            for i in range(n_blocks):
                buffer.append(i % n_pes, Op.R, Area.HEAP, base + 4 * i)
        config = SimulationConfig()
        generated = replay(buffer, config, n_pes=n_pes, kernel="generated")
        assert codegen._PREP_CACHE is not None
        assert codegen._PREP_CACHE[3][9] is None  # dict scheme took over
        interpreted = replay(buffer, config, n_pes=n_pes,
                             kernel="interpreted")
        assert generated.as_dict() == interpreted.as_dict()

    def test_conflict_free_runs_collapse_and_match(self):
        # One PE hammering one block: the tails must collapse to DUP
        # keys, and the bulk-folded counters must equal the interpreted
        # reference exactly.
        buffer = TraceBuffer(n_pes=2)
        base = AREA_BASE[Area.HEAP]
        for block in range(6):
            for _ in range(50):
                buffer.append(0, Op.R, Area.HEAP, base + 4 * block)
        buffer.append(1, Op.W, Area.HEAP, base)  # break the last run
        config = SimulationConfig()
        generated = replay(buffer, config, n_pes=2, kernel="generated")
        payload = codegen._PREP_CACHE[3]
        keys, tag_shift = payload[0], payload[6]
        dup_tag = codegen.KIND_DUP << tag_shift
        assert sum(1 for k in keys if k >= dup_tag) > 200
        interpreted = replay(buffer, config, n_pes=2, kernel="interpreted")
        assert generated.as_dict() == interpreted.as_dict()

    @pytest.mark.parametrize("protocol", protocol_names())
    def test_warm_system_mirror_stays_consistent(self, protocol):
        # Replay two different traces back to back into one system: the
        # second run must mirror the survivors of the first (warm lines)
        # correctly under every protocol.
        config = SimulationConfig(protocol=protocol)
        first = generate_random_trace(1_500, n_pes=3, seed=6)
        second = generate_random_trace(1_500, n_pes=3, seed=7)

        def run(kernel):
            system = PIMCacheSystem(config, 3)
            replay(first, system=system, kernel=kernel)
            return replay(second, system=system, kernel=kernel)

        assert run("generated").as_dict() == run("interpreted").as_dict()

    def test_mirror_detached_after_replay(self):
        system = PIMCacheSystem(SimulationConfig(), 2)
        replay(generate_random_trace(300, n_pes=2, seed=8),
               system=system, kernel="generated")
        for cache in system.caches:
            assert cache._mirror is None
            assert cache._mirror_remap is None

    def test_blocked_reference_raises_with_position(self):
        buffer = TraceBuffer(n_pes=2)
        address = AREA_BASE[Area.HEAP]
        buffer.append(0, Op.LR, Area.HEAP, address)
        buffer.append(1, Op.R, Area.HEAP, address)
        with pytest.raises(ReplayBlockedError) as info:
            replay(buffer, SimulationConfig(), kernel="generated")
        assert info.value.index == 1
        assert info.value.pe == 1
