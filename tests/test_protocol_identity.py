"""Counter-identity gates for the table-driven protocol layer.

Three layers of defence around the ``PIMCacheSystem`` refactor:

1. **Golden identity** — every pre-existing protocol must reproduce the
   stats committed in ``tests/golden/protocol_stats.json`` bit-for-bit
   (``pe_cycles`` included).  The goldens were generated at the commit
   *before* the protocol layer existed, so these tests fail if the
   refactor changed any observable counter of any original protocol.
2. **Path identity** — for every *registered* protocol (the new
   ``write_once`` included), the inlined fast replay kernel and the full
   per-access system path must agree on every counter.
3. **Property identity** — the same, under randomized mixed
   DW/ER/RP/RI/R/W traces (hypothesis), with coherence invariants
   checked along the full-system pass.

Tests are parametrized by protocol name so CI's protocol-matrix job can
select one protocol with ``-k``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import CacheConfig, OptimizationConfig, SimulationConfig
from repro.core.protocol import codegen, protocol_names
from repro.core.replay import replay
from repro.obs.windows import windowed_replay
from repro.trace.synthetic import (
    AuroraTraceConfig,
    generate_aurora_trace,
    generate_random_trace,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "protocol_stats.json"
GOLDENS = json.loads(GOLDEN_PATH.read_text())

#: The protocols that existed before the refactor (golden coverage).
GOLDEN_PROTOCOLS = ("pim", "illinois", "write_through", "write_update")

#: Config variants, mirroring tests/golden/generate_goldens.py exactly.
CONFIG_NAMES = ("base", "no_opt", "small")

#: Both replay kernels must hit the goldens; the generated one only
#: exists where numpy does (CI's no-numpy tests job skips it).
KERNEL_PARAMS = (
    "interpreted",
    pytest.param(
        "generated",
        marks=pytest.mark.skipif(
            not codegen.available(), reason="generated kernels need numpy"
        ),
    ),
)


def _config(protocol: str, name: str) -> SimulationConfig:
    if name == "base":
        return SimulationConfig(protocol=protocol)
    if name == "no_opt":
        return SimulationConfig(
            protocol=protocol, opts=OptimizationConfig.none()
        )
    return SimulationConfig(
        protocol=protocol, cache=CacheConfig(n_sets=16, associativity=2)
    )


@pytest.fixture(scope="module")
def golden_traces():
    """The exact traces the goldens were generated from."""
    return {
        "random": generate_random_trace(24_000, n_pes=4, seed=123),
        "aurora": generate_aurora_trace(
            AuroraTraceConfig(n_pes=4, steps_per_pe=300, seed=11)
        ),
    }


@pytest.mark.parametrize("kernel", KERNEL_PARAMS)
@pytest.mark.parametrize("config_name", CONFIG_NAMES)
@pytest.mark.parametrize("trace_name", ("random", "aurora"))
@pytest.mark.parametrize("protocol", GOLDEN_PROTOCOLS)
def test_fast_kernel_matches_pre_refactor_goldens(
    golden_traces, protocol, trace_name, config_name, kernel
):
    buffer = golden_traces[trace_name]
    stats = replay(
        buffer, _config(protocol, config_name), n_pes=4, kernel=kernel
    )
    golden = GOLDENS[f"{trace_name}/{protocol}/{config_name}"]
    assert stats.as_dict() == golden


@pytest.mark.parametrize("protocol", GOLDEN_PROTOCOLS)
def test_system_path_matches_pre_refactor_goldens(golden_traces, protocol):
    """The per-access path reproduces the goldens too (base config)."""
    buffer = golden_traces["random"]
    stats, _ = windowed_replay(
        buffer, _config(protocol, "base"), n_pes=4
    )
    assert stats.as_dict() == GOLDENS[f"random/{protocol}/base"]


@pytest.mark.parametrize("kernel", KERNEL_PARAMS)
@pytest.mark.parametrize("protocol", protocol_names())
def test_fast_kernel_matches_system_path(golden_traces, protocol, kernel):
    """Every registered protocol: both replay paths, identical counters."""
    buffer = golden_traces["random"]
    config = SimulationConfig(protocol=protocol)
    fast = replay(buffer, config, n_pes=4, kernel=kernel)
    full, _ = windowed_replay(buffer, config, n_pes=4)
    assert fast.as_dict() == full.as_dict()


@pytest.mark.parametrize("protocol", protocol_names())
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_random_traces_counter_identical_across_paths(protocol, seed):
    """Property: randomized mixed op traces agree across both paths
    under every registered protocol, with invariants checked."""
    buffer = generate_random_trace(1_200, n_pes=3, seed=seed)
    config = SimulationConfig(protocol=protocol)
    fast = replay(buffer, config, n_pes=3, kernel="interpreted")
    full, _ = windowed_replay(
        buffer, config, n_pes=3, check_invariants_every=400
    )
    assert fast.as_dict() == full.as_dict()
    if codegen.available():
        generated = replay(buffer, config, n_pes=3, kernel="generated")
        assert generated.as_dict() == fast.as_dict()


@pytest.mark.parametrize("protocol", protocol_names())
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_random_traces_with_data_tracking(protocol, seed):
    """Data-tracking runs stay coherent (invariants include value
    agreement between caches and memory) under every protocol."""
    buffer = generate_random_trace(600, n_pes=2, seed=seed)
    config = SimulationConfig(protocol=protocol, track_data=True)
    replay(buffer, config, n_pes=2, check_invariants_every=150)
