"""The protocol spec/registry layer: validation, lookup, and the
behaviour of the newly registered Goodman write-once baseline."""

import pytest

from repro.core.config import SimulationConfig
from repro.core.protocol import (
    ProtocolSpec,
    RemoteAction,
    StoreRule,
    SupplierRule,
    get_protocol,
    is_registered,
    protocol_names,
    register,
)
from repro.core.states import CacheState
from repro.core.system import PIMCacheSystem
from repro.trace.events import AREA_BASE, Area, Op

INV, S, SM, EC, EM = CacheState


def _spec_kwargs(**overrides):
    """A minimal valid spec (PIM-shaped), overridable per test."""
    kwargs = dict(
        name="testproto",
        title="Test protocol",
        description="test",
        store={
            INV: StoreRule(next_state=EM, remote=RemoteAction.INVALIDATE,
                           allocate=True),
            S: StoreRule(next_state=EM, remote=RemoteAction.INVALIDATE),
            SM: StoreRule(next_state=EM, remote=RemoteAction.INVALIDATE),
            EC: StoreRule(next_state=EM),
            EM: StoreRule(next_state=EM),
        },
        supplier={
            S: SupplierRule(S),
            SM: SupplierRule(SM),
            EC: SupplierRule(S),
            EM: SupplierRule(SM),
        },
    )
    kwargs.update(overrides)
    return kwargs


class TestRegistry:
    def test_all_five_builtins_registered(self):
        names = protocol_names()
        assert len(names) >= 5
        for name in ("pim", "illinois", "write_through", "write_update",
                     "write_once"):
            assert name in names
            assert is_registered(name)
            assert get_protocol(name).name == name

    def test_unknown_protocol_error_lists_known_names(self):
        with pytest.raises(KeyError, match="pim"):
            get_protocol("illnois")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(get_protocol("pim"))

    def test_replace_allows_reregistration(self):
        spec = get_protocol("pim")
        assert register(spec, replace=True) is spec

    def test_config_rejects_typo_with_known_names(self):
        with pytest.raises(ValueError) as error:
            SimulationConfig(protocol="illnois")
        message = str(error.value)
        assert "illnois" in message
        for name in protocol_names():
            assert name in message

    def test_config_accepts_every_registered_protocol(self):
        for name in protocol_names():
            assert SimulationConfig(protocol=name).protocol == name


class TestSpecValidation:
    def test_missing_store_state_rejected(self):
        kwargs = _spec_kwargs()
        del kwargs["store"][SM]
        with pytest.raises(ValueError, match="store table missing"):
            ProtocolSpec(**kwargs)

    def test_missing_supplier_state_rejected(self):
        kwargs = _spec_kwargs()
        del kwargs["supplier"][EC]
        with pytest.raises(ValueError, match="supplier table missing"):
            ProtocolSpec(**kwargs)

    def test_allocate_outside_miss_row_rejected(self):
        kwargs = _spec_kwargs()
        kwargs["store"][S] = StoreRule(next_state=EM, allocate=True)
        with pytest.raises(ValueError, match="allocate"):
            ProtocolSpec(**kwargs)

    def test_silent_store_cannot_clean_a_dirty_block(self):
        kwargs = _spec_kwargs()
        kwargs["store"][EM] = StoreRule(next_state=EC)
        with pytest.raises(ValueError, match="copy-back duty"):
            ProtocolSpec(**kwargs)

    def test_clean_supplier_cannot_copyback(self):
        kwargs = _spec_kwargs()
        kwargs["supplier"][EC] = SupplierRule(S, copyback=True)
        with pytest.raises(ValueError, match="copyback"):
            ProtocolSpec(**kwargs)

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="identifier"):
            ProtocolSpec(**_spec_kwargs(name="no spaces!"))


class TestSpecDerivations:
    def test_pim_shape(self):
        spec = get_protocol("pim")
        assert not spec.all_through
        assert spec.write_allocates
        assert spec.has_silent_stores
        silent = spec.silent_store_next()
        assert silent[EC] is EM and silent[EM] is EM
        assert silent[INV] is None and silent[S] is None
        assert spec.supplier_rules()[EM] == (SM, False)

    def test_illinois_copyback_shape(self):
        spec = get_protocol("illinois")
        assert spec.fetch_inval_copyback
        assert spec.supplier_rules()[EM] == (S, True)
        assert spec.supplier_rules()[SM] == (S, True)

    def test_write_through_family_shape(self):
        for name in ("write_through", "write_update"):
            spec = get_protocol(name)
            assert spec.all_through
            assert not spec.write_allocates
            assert not spec.has_silent_stores
            assert spec.silent_store_next() == (None,) * 5

    def test_render_table_covers_every_state(self):
        for name in protocol_names():
            text = get_protocol(name).render_table()
            for state in CacheState:
                assert state.name in text

    def test_summary_is_json_ready(self):
        import json

        for name in protocol_names():
            summary = get_protocol(name).summary()
            assert json.loads(json.dumps(summary)) == summary
            assert summary["name"] == name


class TestWriteOnce:
    """Goodman write-once semantics through the compiled system."""

    def setup_method(self):
        self.system = PIMCacheSystem(
            SimulationConfig(protocol="write_once"), 2
        )
        self.heap = AREA_BASE[Area.HEAP]

    def state(self, pe, address):
        return self.system.line_state(pe, address)

    def test_first_write_to_shared_goes_through_and_reserves(self):
        system, address = self.system, self.heap
        system.access(0, Op.R, Area.HEAP, address)
        system.access(1, Op.R, Area.HEAP, address)
        assert self.state(0, address) == S
        before = system.stats.memory_busy_cycles
        system.access(0, Op.W, Area.HEAP, address)
        # Through-write: one word to memory, remote invalidated, local
        # copy Reserved (EC — clean, because the write went through).
        assert system.stats.memory_busy_cycles > before
        assert self.state(0, address) == EC
        assert self.state(1, address) == INV

    def test_exclusive_write_hit_is_silent_and_dirties(self):
        system, address = self.system, self.heap
        system.access(0, Op.R, Area.HEAP, address)  # sole copy: EC
        assert self.state(0, address) == EC
        bus_before = system.stats.bus_cycles_total
        system.access(0, Op.W, Area.HEAP, address)
        # Exclusive write hit: silent, no bus cycles, dirty (the classic
        # write-once "Dirty" state; EC plays Goodman's Reserved).
        assert system.stats.bus_cycles_total == bus_before
        assert self.state(0, address) == EM

    def test_write_hit_after_reserve_is_silent(self):
        system, address = self.system, self.heap
        system.access(0, Op.R, Area.HEAP, address)
        system.access(1, Op.R, Area.HEAP, address)
        system.access(0, Op.W, Area.HEAP, address)  # through-write -> EC
        assert self.state(0, address) == EC
        bus_before = system.stats.bus_cycles_total
        system.access(0, Op.W, Area.HEAP, address)
        assert system.stats.bus_cycles_total == bus_before
        assert self.state(0, address) == EM

    def test_write_miss_does_not_allocate(self):
        system, address = self.system, self.heap
        system.access(0, Op.W, Area.HEAP, address)
        assert self.state(0, address) == INV
        assert system.stats.swap_ins == 0

    def test_dirty_transfer_copies_back(self):
        system, address = self.system, self.heap
        system.access(0, Op.R, Area.HEAP, address)
        system.access(0, Op.W, Area.HEAP, address)  # EC (silent -> EM)
        assert self.state(0, address) == EM
        before = system.stats.swap_outs
        system.access(1, Op.R, Area.HEAP, address)
        # Illinois-style: the dirty supplier copies back and both end
        # up clean-shared.
        assert system.stats.swap_outs == before + 1
        assert self.state(0, address) == S
        assert self.state(1, address) == S
