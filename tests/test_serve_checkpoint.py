"""Checkpoint/resume identity (repro.serve.checkpoint).

The contract: ``restore(snapshot(system))`` rebuilds a simulator whose
future is indistinguishable from the original's — "run N refs" equals
"run k refs, snapshot, JSON round trip, restore, run N−k refs" *bit for
bit*, for every registered protocol, both replay kernels, both
interconnect backends, and clustered (K=2) machines.  Equality is
checked twice per case: the final counters, and the full end-state
snapshots (caches, locks, directory entries, clocks included).
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.replay import split_trace
from repro.cluster.system import ClusteredSystem
from repro.core.config import SimulationConfig
from repro.core.protocol import codegen, protocol_names
from repro.core.replay import replay
from repro.core.system import PIMCacheSystem
from repro.obs.schema import SchemaError, validate_checkpoint
from repro.serve.checkpoint import (
    read_checkpoint,
    restore,
    snapshot,
    write_checkpoint,
)
from repro.trace.synthetic import generate_contract_trace

KERNEL_PARAMS = (
    "interpreted",
    pytest.param(
        "generated",
        marks=pytest.mark.skipif(
            not codegen.available(), reason="generated kernels need numpy"
        ),
    ),
)


@pytest.fixture(scope="module")
def contract_trace():
    return generate_contract_trace(2_000, n_pes=4, seed=17)


def _build(config):
    if config.cluster.n_clusters > 1:
        return ClusteredSystem(config, 4)
    return PIMCacheSystem(config, 4)


def _run(system, trace, kernel):
    """Advance *system* by *trace*; returns its result stats."""
    if isinstance(system, ClusteredSystem):
        shards = split_trace(trace, system.n_pes, system.n_clusters)
        for sub, shard in zip(system.systems, shards):
            if len(shard):
                replay(shard, system=sub, kernel=kernel)
        return system.cluster_stats()
    return replay(trace, system=system, kernel=kernel)


@pytest.mark.parametrize("kernel", KERNEL_PARAMS)
@pytest.mark.parametrize("clusters", (1, 2))
@pytest.mark.parametrize("interconnect", ("bus", "directory"))
@pytest.mark.parametrize("protocol", sorted(protocol_names()))
def test_snapshot_restore_identity(
    contract_trace, protocol, interconnect, clusters, kernel
):
    config = SimulationConfig(protocol=protocol, interconnect=interconnect)
    if clusters > 1:
        config = config.with_clusters(clusters)
    trace = contract_trace
    mid = len(trace) // 3

    uninterrupted = _build(config)
    full = _run(uninterrupted, trace, kernel)

    prefix_system = _build(config)
    _run(prefix_system, trace.slice(0, mid), kernel)
    checkpoint = json.loads(json.dumps(snapshot(prefix_system)))
    validate_checkpoint(checkpoint)
    resumed_system = restore(checkpoint)
    resumed = _run(resumed_system, trace.slice(mid, len(trace)), kernel)

    assert resumed.as_dict() == full.as_dict()
    assert snapshot(resumed_system) == snapshot(uninterrupted)


def test_snapshot_of_restored_system_is_stable(contract_trace):
    # restore() must reproduce the snapshot exactly, not an equivalent
    # rebuild: a second snapshot is byte-for-byte the first.
    system = PIMCacheSystem(SimulationConfig(), 4)
    replay(contract_trace, system=system, kernel="interpreted")
    first = snapshot(system)
    assert snapshot(restore(first)) == first


def test_directory_snapshot_carries_entries(contract_trace):
    config = SimulationConfig(interconnect="directory")
    system = PIMCacheSystem(config, 4)
    replay(contract_trace, system=system, kernel="interpreted")
    checkpoint = snapshot(system)
    entries = checkpoint["systems"][0]["interconnect"]["entries"]
    assert entries, "directory run produced no directory entries"
    assert all(len(row) == 4 for row in entries)


def test_checkpoint_file_roundtrip(contract_trace, tmp_path):
    system = PIMCacheSystem(SimulationConfig(), 4)
    replay(contract_trace, system=system, kernel="interpreted")
    path = tmp_path / "ck.json"
    checkpoint = snapshot(system)
    write_checkpoint(checkpoint, path)
    assert read_checkpoint(path) == checkpoint
    assert not list(tmp_path.glob("*.tmp")), "atomic write left a temp file"


def test_validate_checkpoint_rejects_malformed(contract_trace):
    system = PIMCacheSystem(SimulationConfig(), 4)
    replay(contract_trace.slice(0, 200), system=system, kernel="interpreted")
    good = snapshot(system)
    validate_checkpoint(good)

    bad = dict(good)
    bad["schema"] = "repro.obs/other/v1"
    with pytest.raises(SchemaError):
        validate_checkpoint(bad)

    bad = dict(good)
    bad["kind"] = "sharded"
    with pytest.raises(SchemaError):
        validate_checkpoint(bad)

    bad = dict(good)
    bad["systems"] = good["systems"] * 2  # flat must have exactly one
    with pytest.raises(SchemaError):
        validate_checkpoint(bad)

    bad = json.loads(json.dumps(good))
    del bad["systems"][0]["caches"][0]["tick"]
    with pytest.raises(SchemaError):
        validate_checkpoint(bad)


def test_restore_rejects_unvalidated_garbage():
    with pytest.raises(SchemaError):
        restore({"schema": "repro.obs/checkpoint/v1", "kind": "flat"})
