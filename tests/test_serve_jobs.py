"""The async simulation job service (repro.serve.jobs) and its
fault-tolerance satellites.

The headline test SIGKILLs a worker mid-stream (via the
``REPRO_SERVE_FAULT_KILL_AFTER`` hook — a real signal 9, not an
exception) and asserts the supervisor records a structured
worker-death error, retries from the last checkpoint, and finishes
with counters *bit-identical* to an uninterrupted run.  Alongside:
the ``SweepPool`` worker-death surfacing (``SweepWorkerError``, not a
hang), the bounded LRU trace cache, and the ``repro serve`` /
``repro cache`` CLI smoke paths.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.analysis.runner import (
    prune_trace_cache,
    trace_cache_limit_bytes,
    trace_cache_stats,
)
from repro.core.config import SimulationConfig
from repro.core.replay import replay
from repro.obs.schema import SchemaError, validate_job
from repro.obs.telemetry import HEARTBEAT_SCHEMA
from repro.serve.jobs import (
    FAULT_KILL_ENV,
    JobError,
    JobServer,
    JobStore,
)
from repro.trace.synthetic import generate_random_trace


@pytest.fixture(scope="module")
def job_trace():
    return generate_random_trace(6_000, n_pes=4, seed=5)


@pytest.fixture(scope="module")
def reference_stats(job_trace):
    return replay(job_trace, SimulationConfig(), n_pes=4).as_dict()


def _submit(store, trace, **kwargs):
    kwargs.setdefault("chunk_refs", 500)
    kwargs.setdefault("checkpoint_every", 2)
    return store.submit(SimulationConfig(), trace, **kwargs)


# ---------------------------------------------------------------------------
# The happy path.


def test_submit_run_fetch(tmp_path, job_trace, reference_stats):
    store = JobStore(tmp_path / "store")
    job_id = _submit(store, job_trace)
    record = store.job(job_id)
    assert record["state"] == "queued"
    validate_job(record)

    JobServer(store).run_pending()
    record = store.job(job_id)
    assert record["state"] == "done"
    assert record["retries"] == 0
    result = store.result(job_id)
    assert result["stats"] == reference_stats
    assert result["manifest"]["config"]["protocol"] == "pim"


def test_heartbeats_are_windowed_and_monotone(tmp_path, job_trace):
    store = JobStore(tmp_path / "store")
    job_id = _submit(store, job_trace)
    JobServer(store).run_pending()
    beats = store.heartbeats(job_id)
    assert len(beats) >= 3
    assert all(beat["schema"] == HEARTBEAT_SCHEMA for beat in beats)
    refs = [beat["refs_done"] for beat in beats]
    assert refs == sorted(refs)
    assert beats[-1]["done"] is True
    assert beats[-1]["refs_done"] == beats[-1]["refs_total"] == len(job_trace)
    # Windowed, not cumulative: per-chunk miss ratios are each <= 1 and
    # not all equal to the final cumulative value.
    assert all(0.0 <= beat["miss_ratio"] <= 1.0 for beat in beats)


def test_trace_storage_is_content_addressed(tmp_path, job_trace):
    store = JobStore(tmp_path / "store")
    first = _submit(store, job_trace)
    second = store.submit(
        SimulationConfig(protocol="illinois"), job_trace, chunk_refs=500
    )
    assert first != second
    assert store.job(first)["trace"] == store.job(second)["trace"]
    assert len(list(store.traces_dir.glob("*.trace"))) == 1


def test_clustered_job(tmp_path, job_trace):
    store = JobStore(tmp_path / "store")
    config = SimulationConfig().with_clusters(2)
    job_id = store.submit(config, job_trace, chunk_refs=500)
    JobServer(store).run_pending()
    result = store.result(job_id)
    assert result["clustered"] is True
    assert result["stats"]["n_clusters"] == 2
    assert result["stats"]["stats"]["total_refs"] == len(job_trace)


def test_submit_rejects_nonpositive_options(tmp_path, job_trace):
    store = JobStore(tmp_path / "store")
    with pytest.raises(JobError):
        _submit(store, job_trace, chunk_refs=0)
    with pytest.raises(JobError):
        _submit(store, job_trace, checkpoint_every=0)


def test_validate_job_rejects_bad_states(tmp_path, job_trace):
    store = JobStore(tmp_path / "store")
    job_id = _submit(store, job_trace)
    record = store.job(job_id)
    bad = dict(record, state="paused")
    with pytest.raises(SchemaError):
        validate_job(bad)
    # A failed job must carry a structured error.
    bad = dict(record, state="failed", error=None)
    with pytest.raises(SchemaError):
        validate_job(bad)


# ---------------------------------------------------------------------------
# Worker death: kill → structured error → resume from checkpoint.


def test_killed_worker_resumes_from_checkpoint(
    tmp_path, job_trace, reference_stats, monkeypatch
):
    store = JobStore(tmp_path / "store")
    job_id = _submit(store, job_trace)  # 12 chunks, checkpoint every 2
    monkeypatch.setenv(FAULT_KILL_ENV, "5")
    record = JobServer(store).run_job(job_id)

    assert record["state"] == "done"
    assert record["retries"] == 1
    assert record["error"]["kind"] == "worker-death"
    assert "signal 9" in record["error"]["detail"]
    assert "checkpoint" in record["error"]["detail"]
    assert store.checkpoint_path(job_id).exists()
    # The acceptance bar: identical counters to an uninterrupted run.
    assert store.result(job_id)["stats"] == reference_stats


def test_job_fails_after_max_retries_with_structured_error(
    tmp_path, job_trace
):
    store = JobStore(tmp_path / "store")
    job_id = _submit(store, job_trace, max_retries=1)
    # Corrupt the stored trace mid-chunk: every attempt dies.
    trace_path = store.trace_path(store.job(job_id)["trace"])
    raw = trace_path.read_bytes()
    trace_path.write_bytes(raw[: len(raw) // 2])

    record = JobServer(store).run_job(job_id)
    assert record["state"] == "failed"
    assert record["retries"] == 1
    assert record["error"]["kind"] == "worker-death"
    assert "gave up" in record["error"]["detail"]
    assert store.result(job_id) is None


def test_run_job_is_idempotent_once_done(tmp_path, job_trace):
    store = JobStore(tmp_path / "store")
    job_id = _submit(store, job_trace)
    server = JobServer(store)
    first = server.run_job(job_id)
    beats_after_first = len(store.heartbeats(job_id))
    again = server.run_job(job_id)
    assert first["state"] == again["state"] == "done"
    assert len(store.heartbeats(job_id)) == beats_after_first


def test_killed_worker_resumes_lazypim_to_identical_result(
    tmp_path, monkeypatch
):
    """A worker SIGKILLed mid-batch in speculative mode resumes from
    the last checkpoint to counters bit-identical to an undisturbed
    streamed run — checkpoints only land on settled batch commits."""
    from repro.serve.stream import replay_stream
    from repro.trace.synthetic import generate_false_sharing_trace

    trace = generate_false_sharing_trace(6_000, n_pes=4, seed=8)
    undisturbed = replay_stream(
        trace,
        SimulationConfig(),
        chunk_refs=500,
        mode="lazypim",
        batch_refs=100,
    ).as_dict()
    assert undisturbed["batch_rollbacks"] > 0

    store = JobStore(tmp_path / "store")
    job_id = store.submit(
        SimulationConfig(),
        trace,
        chunk_refs=500,
        checkpoint_every=2,
        mode="lazypim",
        batch_refs=100,
    )
    monkeypatch.setenv(FAULT_KILL_ENV, "5")
    record = JobServer(store).run_job(job_id)
    assert record["state"] == "done"
    assert record["retries"] == 1
    assert record["mode"] == "lazypim"
    assert store.result(job_id)["stats"] == undisturbed


def test_submit_rejects_unknown_mode(tmp_path, job_trace):
    store = JobStore(tmp_path / "store")
    with pytest.raises(JobError):
        _submit(store, job_trace, mode="eager")


# ---------------------------------------------------------------------------
# SweepPool worker death surfaces, it does not hang.


def test_sweep_pool_worker_death_raises_structured_error(job_trace):
    from repro.analysis.parallel import SweepPool, SweepWorkerError

    with SweepPool(job_trace, jobs=2) as pool:
        if pool.kind != "persistent":
            pytest.skip("single-CPU host: no worker processes to kill")
        pool.warm()
        victim = next(iter(pool._pool._processes))
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 30
        with pytest.raises(SweepWorkerError) as info:
            while time.monotonic() < deadline:
                pool.map([SimulationConfig(), SimulationConfig()])
        assert info.value.jobs == 2
        assert info.value.n_configs == 2
        assert "repro serve" in str(info.value)


def test_sweep_pool_retry_after_restart_is_bit_identical(
    job_trace, monkeypatch
):
    """Regression: respawned workers must initialize from the pool's
    construction-time state.  Reading ``REPRO_REPLAY_KERNEL`` at
    respawn time used to let an environment change between the original
    spawn and the retry silently switch kernels mid-sweep."""
    from repro.analysis.parallel import SweepPool, SweepWorkerError

    configs = [SimulationConfig(), SimulationConfig(protocol="illinois")]
    with SweepPool(job_trace, jobs=2, kernel="interpreted") as pool:
        if pool.kind != "persistent":
            pytest.skip("single-CPU host: no worker processes to kill")
        pool.warm()
        baseline = [stats.as_dict() for stats in pool.map(configs)]
        victim = next(iter(pool._pool._processes))
        os.kill(victim, signal.SIGKILL)
        monkeypatch.setenv("REPRO_REPLAY_KERNEL", "generated")
        deadline = time.monotonic() + 30
        with pytest.raises(SweepWorkerError):
            while time.monotonic() < deadline:
                pool.map(configs)
        # The pool already respawned; the retry must run with the
        # pinned construction-time kernel and reproduce the sweep
        # bit for bit despite the changed environment.
        assert pool._initargs[-1] == "interpreted"
        retried = [stats.as_dict() for stats in pool.map(configs)]
        assert retried == baseline


# ---------------------------------------------------------------------------
# The bounded disk trace cache.


@pytest.fixture
def fake_cache(tmp_path, monkeypatch):
    root = tmp_path / "tracecache"
    root.mkdir()
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(root))
    monkeypatch.delenv("REPRO_TRACE_CACHE_BYTES", raising=False)
    now = time.time()
    for index in range(4):
        path = root / f"w{index}.trace"
        path.write_bytes(bytes(1_000))
        # Strictly increasing mtimes: w0 is the least recently used.
        os.utime(path, (now + index, now + index))
    return root


def test_trace_cache_stats_counts_files(fake_cache):
    stats = trace_cache_stats()
    assert stats["enabled"] is True
    assert stats["dir"] == str(fake_cache)
    assert stats["files"] == 4
    assert stats["total_bytes"] == 4_000


def test_prune_evicts_least_recently_used_first(fake_cache):
    stats = prune_trace_cache(max_bytes=2_500)
    assert stats["removed"] == 2
    assert stats["removed_bytes"] == 2_000
    assert stats["total_bytes"] == 2_000
    survivors = sorted(p.name for p in fake_cache.glob("*.trace"))
    assert survivors == ["w2.trace", "w3.trace"]


def test_prune_zero_limit_means_unbounded(fake_cache):
    stats = prune_trace_cache(max_bytes=0)
    assert stats["removed"] == 0
    assert stats["files"] == 4


def test_cache_limit_env_parsing(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE_BYTES", "12345")
    assert trace_cache_limit_bytes() == 12_345
    monkeypatch.setenv("REPRO_TRACE_CACHE_BYTES", "not-a-number")
    assert trace_cache_limit_bytes() == 512 * 1024 * 1024
    monkeypatch.setenv("REPRO_TRACE_CACHE_BYTES", "-5")
    assert trace_cache_limit_bytes() == 0


# ---------------------------------------------------------------------------
# CLI smoke: serve + cache.


def test_cli_serve_lifecycle(tmp_path, job_trace, capsys):
    from repro.cli import main
    from repro.trace.io import write_trace_chunked

    trace_path = tmp_path / "t.trace"
    write_trace_chunked(job_trace, trace_path, chunk_refs=500)
    store = str(tmp_path / "store")

    assert main(["serve", "--store", store, "submit",
                 "--trace", str(trace_path), "--pes", "0",
                 "--chunk", "500"]) == 0
    job_id = capsys.readouterr().out.split()[1]

    assert main(["serve", "--store", store, "run"]) == 0
    assert "done" in capsys.readouterr().out

    assert main(["serve", "--store", store, "status", job_id]) == 0
    out = capsys.readouterr().out
    assert "done" in out and "100.0%" in out

    assert main(["serve", "--store", store, "result", job_id]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["job"] == job_id
    assert record["stats"]["total_refs"] == len(job_trace)


def test_cli_serve_result_before_run_fails(tmp_path, job_trace, capsys):
    from repro.cli import main

    store = JobStore(tmp_path / "store")
    job_id = _submit(store, job_trace)
    assert main(["serve", "--store", str(tmp_path / "store"),
                 "result", job_id]) == 1
    assert "no result yet" in capsys.readouterr().err


def test_cli_cache_stats_and_prune(fake_cache, capsys):
    from repro.cli import main

    assert main(["cache", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "files:  4" in out
    assert main(["cache", "--prune", "--max-bytes", "1500"]) == 0
    out = capsys.readouterr().out
    assert "pruned: 3 trace(s)" in out
    assert "files:  1" in out
