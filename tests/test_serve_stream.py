"""Streaming replay identity and memory-boundedness (repro.serve.stream).

The load-bearing claim: replaying a trace chunk-by-chunk through one
persistent system is *bit-identical* to replaying it whole in memory —
for every golden protocol/config pair, both replay kernels, both
interconnect backends, and clustered (K=2) systems.  The goldens pin
the bus/K=1 axis directly; the other axes are checked against a freshly
computed in-memory reference (the goldens predate those backends).

The memory test pins the other half of the contract: peak allocation
during a streamed replay is bounded by one chunk plus simulator state,
not by the trace.
"""

from __future__ import annotations

import gc
import json
import tracemalloc
from pathlib import Path

import pytest

from repro.core.config import CacheConfig, OptimizationConfig, SimulationConfig
from repro.core.protocol import codegen
from repro.core.replay import replay
from repro.serve.stream import chunk_stream, replay_stream
from repro.trace.io import write_trace_chunked
from repro.trace.synthetic import (
    AuroraTraceConfig,
    generate_aurora_trace,
    generate_random_trace,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "protocol_stats.json"
GOLDENS = json.loads(GOLDEN_PATH.read_text())

GOLDEN_PROTOCOLS = ("pim", "illinois", "write_through", "write_update")
CONFIG_NAMES = ("base", "no_opt", "small")

KERNEL_PARAMS = (
    "interpreted",
    pytest.param(
        "generated",
        marks=pytest.mark.skipif(
            not codegen.available(), reason="generated kernels need numpy"
        ),
    ),
)

#: Chunk size chosen to split both golden traces into several chunks
#: with ragged tails (neither trace length is a multiple of it).
CHUNK_REFS = 4_099


def _config(protocol, name, interconnect="bus", clusters=1):
    if name == "base":
        config = SimulationConfig(protocol=protocol, interconnect=interconnect)
    elif name == "no_opt":
        config = SimulationConfig(
            protocol=protocol,
            opts=OptimizationConfig.none(),
            interconnect=interconnect,
        )
    else:
        config = SimulationConfig(
            protocol=protocol,
            cache=CacheConfig(n_sets=16, associativity=2),
            interconnect=interconnect,
        )
    if clusters > 1:
        config = config.with_clusters(clusters)
    return config


@pytest.fixture(scope="module")
def golden_traces():
    return {
        "random": generate_random_trace(24_000, n_pes=4, seed=123),
        "aurora": generate_aurora_trace(
            AuroraTraceConfig(n_pes=4, steps_per_pe=300, seed=11)
        ),
    }


@pytest.fixture(scope="module")
def chunked_paths(golden_traces, tmp_path_factory):
    """The golden traces re-serialized as chunked container files."""
    root = tmp_path_factory.mktemp("chunked")
    paths = {}
    for name, buffer in golden_traces.items():
        path = root / f"{name}.trace"
        write_trace_chunked(buffer, path, chunk_refs=CHUNK_REFS)
        paths[name] = path
    return paths


# ---------------------------------------------------------------------------
# The bus/K=1 axis: streamed replay must hit the committed goldens.


@pytest.mark.parametrize("kernel", KERNEL_PARAMS)
@pytest.mark.parametrize("config_name", CONFIG_NAMES)
@pytest.mark.parametrize("trace_name", ("random", "aurora"))
@pytest.mark.parametrize("protocol", GOLDEN_PROTOCOLS)
def test_streamed_replay_matches_goldens(
    chunked_paths, protocol, trace_name, config_name, kernel
):
    stats = replay_stream(
        chunked_paths[trace_name],
        config=_config(protocol, config_name),
        n_pes=4,
        kernel=kernel,
    )
    assert stats.as_dict() == GOLDENS[f"{trace_name}/{protocol}/{config_name}"]


# ---------------------------------------------------------------------------
# The other axes (directory backend, K=2 clusters): streamed == whole.


@pytest.mark.parametrize("kernel", KERNEL_PARAMS)
@pytest.mark.parametrize("clusters", (1, 2))
@pytest.mark.parametrize("interconnect", ("bus", "directory"))
@pytest.mark.parametrize("protocol", GOLDEN_PROTOCOLS)
def test_streamed_replay_matches_in_memory(
    golden_traces, chunked_paths, protocol, interconnect, clusters, kernel
):
    config = _config(protocol, "base", interconnect, clusters)
    streamed = replay_stream(
        chunked_paths["random"], config=config, n_pes=4, kernel=kernel
    )
    if clusters > 1:
        # The canonical in-memory clustered replay: split the whole
        # trace once, replay each shard whole into its cluster.  The
        # streamed run split every chunk instead — identical counters
        # prove splitting commutes with chunked composition.
        from repro.cluster.replay import split_trace
        from repro.cluster.system import ClusteredSystem

        reference_system = ClusteredSystem(config, 4)
        shards = split_trace(golden_traces["random"], 4, clusters)
        for sub, shard in zip(reference_system.systems, shards):
            replay(shard, system=sub, kernel=kernel)
        reference = reference_system.cluster_stats()
        assert streamed.as_dict() == reference.as_dict()
    else:
        reference = replay(
            golden_traces["random"], config, n_pes=4, kernel=kernel
        )
        assert streamed.as_dict() == reference.as_dict()


def test_chunk_stream_normalizes_every_source(golden_traces, chunked_paths):
    buffer = golden_traces["aurora"]
    rows = list(buffer)
    from_path = chunk_stream(chunked_paths["aurora"])
    from_buffer = chunk_stream(buffer, chunk_refs=777)
    from_iterable = chunk_stream(iter([buffer]))
    for chunks in (from_path, from_buffer, from_iterable):
        assert [row for chunk in chunks for row in chunk] == rows


def test_on_chunk_hook_sees_monotone_progress(chunked_paths):
    seen = []
    replay_stream(
        chunked_paths["aurora"],
        config=SimulationConfig(),
        n_pes=4,
        on_chunk=lambda index, refs, system: seen.append((index, refs)),
    )
    assert [index for index, _ in seen] == list(range(len(seen)))
    refs = [done for _, done in seen]
    assert refs == sorted(refs) and len(set(refs)) == len(refs)


def test_empty_stream_yields_untouched_system():
    stats = replay_stream(iter(()), config=SimulationConfig(), n_pes=4)
    assert stats.total_refs == 0


# ---------------------------------------------------------------------------
# Constant-memory streaming.


def test_streamed_replay_memory_is_bounded_by_chunk_size(tmp_path):
    # A trace several megabytes on disk, streamed in ~16 KiB chunks:
    # peak traced allocation must stay far below the whole-trace
    # footprint (the in-memory buffer alone would be ~12 bytes/ref).
    path = tmp_path / "big.trace"

    def chunks():
        for seed in range(60):
            yield generate_random_trace(4_000, n_pes=4, seed=seed)

    total = write_trace_chunked(chunks(), path)
    assert total >= 240_000
    assert path.stat().st_size > 2_500_000
    gc.collect()
    tracemalloc.start()
    stats = replay_stream(
        path, config=SimulationConfig(), n_pes=4, kernel="interpreted"
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert stats.total_refs == total
    # Whole-trace replay would hold >= ~2.9 MB of columns; the streamed
    # peak (one chunk + live simulator state) must be well under that.
    assert peak < 1_200_000, f"streamed replay peaked at {peak:,} bytes"
