"""Speculative batch coherence (LazyPIM mode): units and identities.

The engine's contract (docs/SPECULATIVE.md) is tested from four sides:

* **planning** — lock operations and contended references force early
  batch commits (they run as non-speculative singletons), everything
  else chops into ``batch_refs``-sized spans;
* **signatures** — the commit test fires exactly on cross-PE write
  intersections, and its false-positive rate is monotone in the
  signature width (hypothesis);
* **identities** — batch size 1 is counter-identical to the pessimistic
  path for every registered protocol, commit/rollback counters are
  deterministic across kernels and cluster counts, the cycle-ledger
  exact-sum invariant survives bulk settlement, and streamed/chunked
  execution reproduces the monolithic run;
* **rollback** — conflicting batches roll back invisibly (final memory
  equals the pessimistic run), including across a persisted checkpoint
  boundary, and the snapshot never aliases live cache-line data (the
  regression that once leaked a future write backward through a
  rollback).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.replay import replay_clustered
from repro.core.config import SimulationConfig
from repro.core.protocol import codegen, protocol_names
from repro.core.replay import replay
from repro.core.speculative import (
    SpeculativeDriver,
    batch_signatures,
    plan_batches,
    replay_speculative,
    signatures_conflict,
)
from repro.core.system import PIMCacheSystem
from repro.obs.metrics import cycle_ledger
from repro.serve.checkpoint import restore, restore_into, snapshot
from repro.serve.stream import replay_stream
from repro.trace.buffer import TraceBuffer
from repro.trace.events import AREA_BASE, FLAG_LOCK_CONTENDED, Area, Op
from repro.trace.synthetic import (
    generate_contract_trace,
    generate_false_sharing_trace,
)

HEAP = AREA_BASE[Area.HEAP]

KERNELS = ["interpreted"] + (["generated"] if codegen.available() else [])

SPECULATIVE_COUNTERS = {
    "batch_commits",
    "batch_rollbacks",
    "signature_settles",
    "batch_elided_invalidations",
}


def _strip(stats_dict):
    return {
        key: value
        for key, value in stats_dict.items()
        if key not in SPECULATIVE_COUNTERS
    }


# ---------------------------------------------------------------------------
# Batch planning.


def test_plan_batches_chops_and_isolates_locks():
    trace = TraceBuffer(n_pes=2)
    for i in range(10):
        trace.append(i % 2, Op.R, Area.HEAP, HEAP + 4 * i)
    trace.append(0, Op.LR, Area.HEAP, HEAP + 4096)
    for i in range(5):
        trace.append(i % 2, Op.W, Area.HEAP, HEAP + 4 * i)
    assert plan_batches(trace, 4) == [
        (0, 4, True),
        (4, 8, True),
        (8, 10, True),
        (10, 11, False),
        (11, 15, True),
        (15, 16, True),
    ]


def test_plan_batches_contended_flag_is_a_barrier():
    trace = TraceBuffer(n_pes=2)
    trace.append(0, Op.R, Area.HEAP, HEAP)
    trace.append(1, Op.R, Area.HEAP, HEAP + 4, flags=FLAG_LOCK_CONTENDED)
    trace.append(0, Op.R, Area.HEAP, HEAP + 8)
    assert plan_batches(trace, 8) == [
        (0, 1, True),
        (1, 2, False),
        (2, 3, True),
    ]


def test_plan_batches_empty_and_window():
    assert plan_batches(TraceBuffer(n_pes=2), 4) == []
    trace = TraceBuffer(n_pes=2)
    for i in range(6):
        trace.append(0, Op.R, Area.HEAP, HEAP + 4 * i)
    assert plan_batches(trace, 4, start=2, stop=5) == [(2, 5, True)]


# ---------------------------------------------------------------------------
# Signatures and the conflict verdict.


def test_signatures_split_reads_from_writes():
    trace = TraceBuffer(n_pes=2)
    trace.append(0, Op.W, Area.HEAP, HEAP)
    trace.append(0, Op.DW, Area.HEAP, HEAP + 4)
    trace.append(1, Op.R, Area.HEAP, HEAP + 64)
    reads, writes = batch_signatures(trace, 0, 3, 2, 2, 256)
    assert writes[0] and not reads[0]
    assert reads[1] and not writes[1]
    assert not signatures_conflict(reads, writes)


def test_conflict_fires_on_cross_pe_write_intersection():
    trace = TraceBuffer(n_pes=2)
    trace.append(0, Op.W, Area.HEAP, HEAP)
    trace.append(1, Op.R, Area.HEAP, HEAP + 1)  # same block, other PE
    reads, writes = batch_signatures(trace, 0, 2, 2, 2, 256)
    assert signatures_conflict(reads, writes)
    # A PE never conflicts with itself.
    trace = TraceBuffer(n_pes=2)
    trace.append(0, Op.W, Area.HEAP, HEAP)
    trace.append(0, Op.R, Area.HEAP, HEAP + 1)
    reads, writes = batch_signatures(trace, 0, 2, 2, 2, 256)
    assert not signatures_conflict(reads, writes)


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 3),       # pe
            st.booleans(),           # write?
            st.integers(0, 1 << 14)  # block
        ),
        min_size=1,
        max_size=64,
    )
)
def test_conflict_verdict_monotone_in_signature_width(refs):
    """A conflict at width 2w is also a conflict at width w: truncating
    the hash can only merge bits, never separate them, so the
    false-positive rate is monotone non-increasing in the width."""
    trace = TraceBuffer(n_pes=4)
    for pe, is_write, block in refs:
        trace.append(pe, Op.W if is_write else Op.R, Area.HEAP,
                     HEAP + block * 4)
    verdicts = []
    for width in (4, 8, 16, 32, 64, 128, 256):
        reads, writes = batch_signatures(trace, 0, len(trace), 4, 2, width)
        verdicts.append(signatures_conflict(reads, writes))
    for narrow, wide in zip(verdicts, verdicts[1:]):
        assert narrow or not wide


# ---------------------------------------------------------------------------
# Degenerate batch: size 1 IS the pessimistic protocol.


@pytest.mark.parametrize("protocol", list(protocol_names()))
def test_batch_one_counter_identical_per_protocol(protocol):
    trace = generate_contract_trace(2_500, n_pes=4, seed=11)
    config = SimulationConfig(protocol=protocol)
    base = replay(trace, config).as_dict()
    lazy = replay(trace, config, mode="lazypim", batch_refs=1).as_dict()
    assert lazy == base  # speculative counters included: all zero


def test_forced_batch_one_differs_only_in_speculative_counters():
    """force_speculation runs the full defer/settle machinery per
    reference; deferral plus immediate settlement must price exactly
    like live charging."""
    trace = generate_contract_trace(2_000, n_pes=4, seed=3)
    base = replay(trace, SimulationConfig()).as_dict()
    forced = replay_speculative(
        trace, SimulationConfig(), batch_refs=1, force_speculation=True
    ).as_dict()
    assert _strip(forced) == _strip(base)
    assert forced["batch_rollbacks"] == 0
    assert forced["batch_commits"] > 0


# ---------------------------------------------------------------------------
# Determinism across kernels and cluster counts.


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 1 << 10))
def test_commit_rollback_counters_deterministic(seed):
    trace = generate_false_sharing_trace(1_200, n_pes=4, seed=seed)
    config = SimulationConfig()
    flat = replay(
        trace, config, kernel="interpreted", mode="lazypim", batch_refs=64
    ).as_dict()
    for kernel in KERNELS[1:]:
        assert (
            replay(
                trace, config, kernel=kernel, mode="lazypim", batch_refs=64
            ).as_dict()
            == flat
        )
    clustered = replay_clustered(
        trace,
        config.with_clusters(2),
        kernel="interpreted",
        mode="lazypim",
        batch_refs=64,
    )
    for kernel in KERNELS[1:]:
        again = replay_clustered(
            trace,
            config.with_clusters(2),
            kernel=kernel,
            mode="lazypim",
            batch_refs=64,
        )
        assert again.stats.as_dict() == clustered.stats.as_dict()


def test_lazypim_rolls_back_on_false_sharing():
    trace = generate_false_sharing_trace(2_000, n_pes=4, seed=2)
    stats = replay(trace, SimulationConfig(), mode="lazypim", batch_refs=64)
    assert stats.batch_rollbacks > 0
    assert stats.total_refs == len(trace)


# ---------------------------------------------------------------------------
# Cycle-ledger exact-sum identity under bulk settlement.


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("interconnect", ["bus", "directory"])
def test_cycle_ledger_exact_under_lazypim(kernel, interconnect):
    trace = generate_contract_trace(3_000, n_pes=4, seed=7)
    stats = replay(
        trace,
        SimulationConfig(interconnect=interconnect),
        kernel=kernel,
        mode="lazypim",
    )
    ledger = cycle_ledger(stats)  # verify=True raises on any mismatch
    assert ledger.attributed_total == ledger.pe_cycles_total
    assert stats.batch_commits > 0


def test_cycle_ledger_exact_under_rollback_storm():
    trace = generate_false_sharing_trace(2_000, n_pes=4, seed=5)
    stats = replay(trace, SimulationConfig(), mode="lazypim", batch_refs=64)
    assert stats.batch_rollbacks > 0
    cycle_ledger(stats)


# ---------------------------------------------------------------------------
# Locks force early commits.


def test_lock_access_forces_early_batch_commit():
    trace = TraceBuffer(n_pes=2)
    for i in range(6):
        pe = i % 2
        trace.append(pe, Op.R, Area.HEAP, HEAP + pe * 64 + 4 * (i // 2))
    trace.append(0, Op.LR, Area.HEAP, HEAP + 4096)
    trace.append(0, Op.UW, Area.HEAP, HEAP + 4096)
    for i in range(6):
        pe = i % 2
        trace.append(pe, Op.W, Area.HEAP, HEAP + 512 + pe * 64 + 4 * (i // 2))
    stats = replay(trace, SimulationConfig(), mode="lazypim", batch_refs=256)
    # 14 references fit one batch, but the adjacent LH/UL pair splits
    # the stream into two speculative spans around two pessimistic
    # singletons — one commit more than the lock-free stream.
    assert stats.batch_commits == 2
    assert stats.batch_rollbacks == 0
    assert stats.total_refs == len(trace)

    lock_free = TraceBuffer(n_pes=2)
    for pe, op, area, addr, flags in trace:
        if op not in (Op.LR, Op.UW):
            lock_free.append(pe, op, area, addr, flags)
    baseline = replay(
        lock_free, SimulationConfig(), mode="lazypim", batch_refs=256
    )
    assert baseline.batch_commits == 1


# ---------------------------------------------------------------------------
# Rollback correctness.


def test_rollbacks_invisible_in_final_memory():
    trace = generate_false_sharing_trace(2_000, n_pes=4, seed=2)
    config = SimulationConfig(track_data=True)
    speculative = PIMCacheSystem(config, 4)
    stats = replay_speculative(trace, system=speculative, batch_refs=64)
    assert stats.batch_rollbacks > 0
    pessimistic = PIMCacheSystem(config, 4)
    replay(trace, system=pessimistic)
    speculative.flush_all(silent=True)
    pessimistic.flush_all(silent=True)
    assert speculative.memory == pessimistic.memory


def test_rollback_spans_checkpoint_boundary():
    """Snapshot mid-run, continue through batches that roll back; a
    resume from the persisted (JSON round-tripped) checkpoint must
    reproduce the undisturbed continuation bit-for-bit."""
    trace = generate_false_sharing_trace(1_600, n_pes=4, seed=4)
    config = SimulationConfig()
    live = PIMCacheSystem(config, 4)
    driver = SpeculativeDriver(live, batch_refs=64)
    driver.feed(trace.slice(0, 800))
    done = driver.refs_done  # 768: the last complete batch boundary
    checkpoint = json.loads(json.dumps(snapshot(live)))
    driver.feed(trace.slice(800, len(trace)))
    reference = driver.flush().as_dict()
    assert reference["batch_rollbacks"] > 0

    resumed = restore(checkpoint)
    resumed_driver = SpeculativeDriver(resumed, batch_refs=64)
    resumed_driver.feed(trace.slice(done, len(trace)))
    assert resumed_driver.flush().as_dict() == reference


def test_snapshot_does_not_alias_cached_line_data():
    """Regression: cache-line data lists are mutated in place by the
    system, so an aliasing snapshot decays as the run continues — the
    bug once let a rolled-back batch's future write leak backward."""
    config = SimulationConfig(track_data=True)
    system = PIMCacheSystem(config, 2)
    system.access(0, Op.W, Area.HEAP, HEAP, 7)
    state = snapshot(system)
    frozen = json.dumps(state, sort_keys=True)
    system.access(0, Op.W, Area.HEAP, HEAP, 99)  # in-place line mutation
    assert json.dumps(state, sort_keys=True) == frozen
    restore_into(system, state)
    assert system.access(0, Op.R, Area.HEAP, HEAP)[2] == 7


# ---------------------------------------------------------------------------
# Chunked and streamed execution.


def test_driver_chunked_feed_matches_monolithic():
    trace = generate_contract_trace(3_000, n_pes=4, seed=13)
    config = SimulationConfig()
    mono = replay(trace, config, mode="lazypim", batch_refs=64).as_dict()
    system = PIMCacheSystem(config, 4)
    driver = SpeculativeDriver(system, batch_refs=64)
    for lo in range(0, len(trace), 333):
        driver.feed(trace.slice(lo, min(lo + 333, len(trace))))
    assert driver.flush().as_dict() == mono


def test_replay_stream_lazypim_matches_monolithic_when_aligned():
    # chunk_refs a multiple of batch_refs and a barrier-free trace:
    # the documented condition for streamed == monolithic counters.
    trace = generate_false_sharing_trace(1_024, n_pes=4, seed=9)
    config = SimulationConfig()
    streamed = replay_stream(
        trace, config, chunk_refs=256, mode="lazypim", batch_refs=64
    ).as_dict()
    mono = replay(trace, config, mode="lazypim", batch_refs=64).as_dict()
    assert streamed == mono
    assert streamed["batch_rollbacks"] > 0


def test_invariants_checked_at_batch_boundaries_on_directory():
    trace = generate_false_sharing_trace(1_500, n_pes=4, seed=3)
    stats = replay_speculative(
        trace,
        SimulationConfig(interconnect="directory"),
        batch_refs=64,
        check_invariants_every=128,
    )
    assert stats.batch_rollbacks > 0


# ---------------------------------------------------------------------------
# Argument validation.


def test_unknown_mode_rejected():
    trace = generate_false_sharing_trace(16, n_pes=2, seed=0)
    with pytest.raises(ValueError, match="unknown replay mode"):
        replay(trace, SimulationConfig(), mode="eager")


def test_driver_rejects_bad_knobs():
    system = PIMCacheSystem(SimulationConfig(), 2)
    with pytest.raises(ValueError, match="batch_refs"):
        SpeculativeDriver(system, batch_refs=0)
    with pytest.raises(ValueError, match="signature_bits"):
        SpeculativeDriver(system, signature_bits=3)


def test_driver_rejects_clustered_systems():
    from repro.cluster.system import ClusteredSystem

    clustered = ClusteredSystem(SimulationConfig().with_clusters(2), 4)
    with pytest.raises(TypeError, match="replay_clustered"):
        SpeculativeDriver(clustered)
