"""Unit and property tests for TraceBuffer."""

import pytest
from hypothesis import given, strategies as st

from repro.trace.buffer import TraceBuffer
from repro.trace.events import Area, MemRef, Op


def test_empty_buffer():
    buffer = TraceBuffer(n_pes=4)
    assert len(buffer) == 0
    assert list(buffer) == []
    assert buffer.n_pes == 4


def test_invalid_pe_count():
    with pytest.raises(ValueError):
        TraceBuffer(n_pes=0)


def test_append_and_iterate():
    buffer = TraceBuffer(n_pes=2)
    buffer.append(0, Op.R, Area.HEAP, 100)
    buffer.append(1, Op.DW, Area.GOAL, 200, flags=1)
    assert len(buffer) == 2
    assert buffer[0] == (0, Op.R, Area.HEAP, 100, 0)
    assert buffer[1] == (1, Op.DW, Area.GOAL, 200, 1)


def test_append_ref_and_refs_roundtrip():
    buffer = TraceBuffer(n_pes=2)
    original = MemRef(1, Op.ER, Area.GOAL, 0x20000008, 0)
    buffer.append_ref(original)
    assert list(buffer.refs()) == [original]


def test_set_flags_rewrites():
    buffer = TraceBuffer()
    buffer.append(0, Op.LR, Area.HEAP, 5)
    buffer.set_flags(0, 1)
    assert buffer[0][4] == 1


def test_extend_preserves_order_and_pes():
    a = TraceBuffer(n_pes=2)
    a.append(0, Op.R, Area.HEAP, 1)
    b = TraceBuffer(n_pes=4)
    b.append(3, Op.W, Area.COMMUNICATION, 2)
    a.extend(b)
    assert len(a) == 2
    assert a.n_pes == 4
    assert a[1][0] == 3


def test_columns_are_live_views():
    buffer = TraceBuffer()
    buffer.append(0, Op.R, Area.HEAP, 7)
    pe, op, area, addr, flags = buffer.columns()
    assert list(addr) == [7]


@given(
    st.lists(
        st.tuples(
            st.integers(0, 7),
            st.sampled_from(list(Op)),
            st.sampled_from(list(Area)),
            st.integers(0, 2**40),
            st.integers(0, 1),
        ),
        max_size=200,
    )
)
def test_property_roundtrip_through_buffer(entries):
    buffer = TraceBuffer(n_pes=8)
    for entry in entries:
        buffer.append(*entry)
    assert len(buffer) == len(entries)
    for stored, original in zip(buffer, entries):
        assert stored == (
            original[0],
            int(original[1]),
            int(original[2]),
            original[3],
            original[4],
        )
