"""Unit tests for the memory-reference vocabulary."""

import pytest

from repro.trace.events import (
    AREA_BASE,
    DATA_AREAS,
    FLAG_LOCK_CONTENDED,
    LOCK_OPS,
    READ_LIKE_OPS,
    WRITE_LIKE_OPS,
    Area,
    MemRef,
    Op,
    area_of_address,
)


def test_nine_operations():
    assert len(Op) == 9
    assert {op.name for op in Op} == {
        "R", "W", "LR", "UW", "U", "DW", "ER", "RP", "RI",
    }


def test_five_areas():
    assert len(Area) == 5
    assert Area.INSTRUCTION == 0


def test_area_bases_are_disjoint():
    bases = sorted(AREA_BASE.values())
    assert len(set(bases)) == len(bases)
    for low, high in zip(bases, bases[1:]):
        assert high - low == 1 << 28


@pytest.mark.parametrize("area", list(Area))
def test_area_of_address_roundtrip(area):
    base = AREA_BASE[area]
    assert area_of_address(base) is area
    assert area_of_address(base + 12345) is area
    assert area_of_address(base + (1 << 28) - 1) is area


def test_op_classes_partition_data_flow():
    assert READ_LIKE_OPS & WRITE_LIKE_OPS == set()
    assert Op.LR in READ_LIKE_OPS
    assert Op.UW in WRITE_LIKE_OPS
    assert Op.U in LOCK_OPS and Op.U not in READ_LIKE_OPS | WRITE_LIKE_OPS


def test_data_areas_exclude_instruction():
    assert Area.INSTRUCTION not in DATA_AREAS
    assert len(DATA_AREAS) == 4


def test_memref_str_mentions_parts():
    ref = MemRef(3, Op.LR, Area.HEAP, 0x10000004, FLAG_LOCK_CONTENDED)
    text = str(ref)
    assert "PE3" in text
    assert "LR" in text
    assert "heap" in text
    assert "contended" in text


def test_memref_is_frozen():
    ref = MemRef(0, Op.R, Area.HEAP, 1)
    with pytest.raises(Exception):
        ref.pe = 1  # type: ignore[misc]
