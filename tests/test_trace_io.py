"""Trace file round-trip tests.

Fixed-example tests cover the header/typecode rejection paths; the
hypothesis properties at the bottom pin the stronger guarantees —
write→read identity for arbitrary buffers, foreign-endian byteswap
transparency, and ``TraceFormatError`` (never a raw ``EOFError`` or
``ValueError``) on a file truncated at *any* byte offset.
"""

import sys
from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.buffer import TraceBuffer
from repro.trace.events import Area, Op
from repro.trace.io import TraceFormatError, read_trace, write_trace
from repro.trace.synthetic import generate_random_trace


def test_roundtrip_empty(tmp_path):
    buffer = TraceBuffer(n_pes=3)
    path = tmp_path / "empty.trace"
    write_trace(buffer, path)
    loaded = read_trace(path)
    assert loaded.n_pes == 3
    assert len(loaded) == 0


def test_roundtrip_content(tmp_path):
    buffer = generate_random_trace(5000, n_pes=4, seed=11)
    path = tmp_path / "t.trace"
    write_trace(buffer, path)
    loaded = read_trace(path)
    assert len(loaded) == len(buffer)
    assert list(loaded) == list(buffer)


def test_rejects_garbage(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_bytes(b"NOTATRACE\nstuff")
    with pytest.raises(TraceFormatError):
        read_trace(path)


def test_rejects_truncated_header(tmp_path):
    path = tmp_path / "trunc.trace"
    path.write_bytes(b"PIMTRACE\n1 little\n")
    with pytest.raises(TraceFormatError):
        read_trace(path)


def test_foreign_endian_roundtrip(tmp_path):
    # Fabricate the file a foreign-endian machine would have written:
    # same header/typecodes, multi-byte columns byteswapped, and the
    # opposite byte order recorded in the header.
    buffer = generate_random_trace(500, n_pes=4, seed=7)
    path = tmp_path / "native.trace"
    write_trace(buffer, path)
    foreign = {"little": "big", "big": "little"}[sys.byteorder]
    raw = path.read_bytes().replace(
        f" {sys.byteorder} ".encode("ascii"), f" {foreign} ".encode("ascii"), 1
    )
    addr_col = buffer.columns()[3]
    swapped = array("q", addr_col)
    swapped.byteswap()
    raw = raw.replace(addr_col.tobytes(), swapped.tobytes(), 1)
    foreign_path = tmp_path / "foreign.trace"
    foreign_path.write_bytes(raw)

    loaded = read_trace(foreign_path)
    assert list(loaded) == list(buffer)


def test_rejects_unknown_byteorder(tmp_path):
    buffer = TraceBuffer()
    buffer.append(0, Op.R, Area.HEAP, 1)
    path = tmp_path / "weird.trace"
    write_trace(buffer, path)
    raw = path.read_bytes().replace(
        f" {sys.byteorder} ".encode("ascii"), b" middle ", 1
    )
    path.write_bytes(raw)
    with pytest.raises(TraceFormatError, match="byte order"):
        read_trace(path)


def test_rejects_bad_version(tmp_path):
    buffer = TraceBuffer()
    buffer.append(0, Op.R, Area.HEAP, 1)
    path = tmp_path / "v.trace"
    write_trace(buffer, path)
    data = path.read_bytes().replace(b"\n1 ", b"\n9 ", 1)
    path.write_bytes(data)
    with pytest.raises(TraceFormatError):
        read_trace(path)


def test_rejects_non_numeric_header_fields(tmp_path):
    path = tmp_path / "nan.trace"
    path.write_bytes(b"PIMTRACE\n1 little four 10\n")
    with pytest.raises(TraceFormatError, match="malformed header"):
        read_trace(path)


def test_rejects_negative_counts(tmp_path):
    path = tmp_path / "neg.trace"
    path.write_bytes(b"PIMTRACE\n1 little 4 -1\n")
    with pytest.raises(TraceFormatError, match="malformed header"):
        read_trace(path)


def test_rejects_binary_header(tmp_path):
    path = tmp_path / "bin.trace"
    path.write_bytes(b"PIMTRACE\n\xff\xfe\x80\n")
    with pytest.raises(TraceFormatError):
        read_trace(path)


def test_truncated_column_names_the_shortfall(tmp_path):
    buffer = generate_random_trace(100, n_pes=2, seed=1)
    path = tmp_path / "cut.trace"
    write_trace(buffer, path)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - 4])
    with pytest.raises(TraceFormatError, match="truncated"):
        read_trace(path)


# ---------------------------------------------------------------------------
# Hypothesis properties.

_ref = st.tuples(
    st.integers(0, 7),  # pe
    st.sampled_from(sorted(Op)),  # op
    st.sampled_from(sorted(Area)),  # area
    st.integers(0, 2**40),  # address
    st.sampled_from([0, 1]),  # flags
)


def _buffer_from(refs, n_pes=8):
    buffer = TraceBuffer(n_pes=n_pes)
    for pe, op, area, addr, flags in refs:
        buffer.append(pe, op, area, addr, flags)
    return buffer


@settings(max_examples=60, deadline=None)
@given(refs=st.lists(_ref, max_size=200), n_pes=st.integers(1, 8))
def test_property_roundtrip_identity(tmp_path_factory, refs, n_pes):
    buffer = _buffer_from(refs, n_pes=n_pes)
    path = tmp_path_factory.mktemp("io") / "prop.trace"
    write_trace(buffer, path)
    loaded = read_trace(path)
    assert loaded.n_pes == buffer.n_pes
    assert list(loaded) == list(buffer)


@settings(max_examples=40, deadline=None)
@given(refs=st.lists(_ref, min_size=1, max_size=120))
def test_property_foreign_endian_roundtrip(tmp_path_factory, refs):
    # Fabricate the byte-for-byte file a foreign-endian producer would
    # have written: multi-byte columns byteswapped, its byte order in
    # the header.  The reader must reconstruct the original references.
    buffer = _buffer_from(refs)
    path = tmp_path_factory.mktemp("io") / "native.trace"
    write_trace(buffer, path)
    foreign = {"little": "big", "big": "little"}[sys.byteorder]
    raw = path.read_bytes().replace(
        f" {sys.byteorder} ".encode("ascii"), f" {foreign} ".encode("ascii"), 1
    )
    addr_col = buffer.columns()[3]
    swapped = array("q", addr_col)
    swapped.byteswap()
    raw = raw.replace(addr_col.tobytes(), swapped.tobytes(), 1)
    foreign_path = tmp_path_factory.mktemp("io") / "foreign.trace"
    foreign_path.write_bytes(raw)
    assert list(read_trace(foreign_path)) == list(buffer)


@settings(max_examples=80, deadline=None)
@given(
    refs=st.lists(_ref, min_size=1, max_size=60),
    cut=st.integers(0, 10**9),
    data=st.data(),
)
def test_property_truncation_always_raises_trace_format_error(
    tmp_path_factory, refs, cut, data
):
    # Any strict prefix of a non-empty trace file is rejected with
    # TraceFormatError — never a raw EOFError, UnicodeDecodeError or
    # ValueError leaking from the parser internals.
    buffer = _buffer_from(refs)
    path = tmp_path_factory.mktemp("io") / "whole.trace"
    write_trace(buffer, path)
    raw = path.read_bytes()
    cut = cut % len(raw)  # strict prefix: 0 <= cut < len(raw)
    short = tmp_path_factory.mktemp("io") / "short.trace"
    short.write_bytes(raw[:cut])
    with pytest.raises(TraceFormatError):
        read_trace(short)
