"""Trace file round-trip tests.

Fixed-example tests cover the header/typecode rejection paths; the
hypothesis properties at the bottom pin the stronger guarantees —
write→read identity for arbitrary buffers, foreign-endian byteswap
transparency, and ``TraceFormatError`` (never a raw ``EOFError`` or
``ValueError``) on a file truncated at *any* byte offset.
"""

import sys
from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.buffer import TraceBuffer
from repro.trace.events import Area, Op
from repro.trace.io import (
    TraceFormatError,
    is_chunked_trace,
    iter_trace_chunks,
    read_trace,
    write_trace,
    write_trace_chunked,
)
from repro.trace.synthetic import generate_random_trace


def test_roundtrip_empty(tmp_path):
    buffer = TraceBuffer(n_pes=3)
    path = tmp_path / "empty.trace"
    write_trace(buffer, path)
    loaded = read_trace(path)
    assert loaded.n_pes == 3
    assert len(loaded) == 0


def test_roundtrip_content(tmp_path):
    buffer = generate_random_trace(5000, n_pes=4, seed=11)
    path = tmp_path / "t.trace"
    write_trace(buffer, path)
    loaded = read_trace(path)
    assert len(loaded) == len(buffer)
    assert list(loaded) == list(buffer)


def test_rejects_garbage(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_bytes(b"NOTATRACE\nstuff")
    with pytest.raises(TraceFormatError):
        read_trace(path)


def test_rejects_truncated_header(tmp_path):
    path = tmp_path / "trunc.trace"
    path.write_bytes(b"PIMTRACE\n1 little\n")
    with pytest.raises(TraceFormatError):
        read_trace(path)


def test_foreign_endian_roundtrip(tmp_path):
    # Fabricate the file a foreign-endian machine would have written:
    # same header/typecodes, multi-byte columns byteswapped, and the
    # opposite byte order recorded in the header.
    buffer = generate_random_trace(500, n_pes=4, seed=7)
    path = tmp_path / "native.trace"
    write_trace(buffer, path)
    foreign = {"little": "big", "big": "little"}[sys.byteorder]
    raw = path.read_bytes().replace(
        f" {sys.byteorder} ".encode("ascii"), f" {foreign} ".encode("ascii"), 1
    )
    addr_col = buffer.columns()[3]
    swapped = array("q", addr_col)
    swapped.byteswap()
    raw = raw.replace(addr_col.tobytes(), swapped.tobytes(), 1)
    foreign_path = tmp_path / "foreign.trace"
    foreign_path.write_bytes(raw)

    loaded = read_trace(foreign_path)
    assert list(loaded) == list(buffer)


def test_rejects_unknown_byteorder(tmp_path):
    buffer = TraceBuffer()
    buffer.append(0, Op.R, Area.HEAP, 1)
    path = tmp_path / "weird.trace"
    write_trace(buffer, path)
    raw = path.read_bytes().replace(
        f" {sys.byteorder} ".encode("ascii"), b" middle ", 1
    )
    path.write_bytes(raw)
    with pytest.raises(TraceFormatError, match="byte order"):
        read_trace(path)


def test_rejects_bad_version(tmp_path):
    buffer = TraceBuffer()
    buffer.append(0, Op.R, Area.HEAP, 1)
    path = tmp_path / "v.trace"
    write_trace(buffer, path)
    data = path.read_bytes().replace(b"\n1 ", b"\n9 ", 1)
    path.write_bytes(data)
    with pytest.raises(TraceFormatError):
        read_trace(path)


def test_rejects_non_numeric_header_fields(tmp_path):
    path = tmp_path / "nan.trace"
    path.write_bytes(b"PIMTRACE\n1 little four 10\n")
    with pytest.raises(TraceFormatError, match="malformed header"):
        read_trace(path)


def test_rejects_negative_counts(tmp_path):
    path = tmp_path / "neg.trace"
    path.write_bytes(b"PIMTRACE\n1 little 4 -1\n")
    with pytest.raises(TraceFormatError, match="malformed header"):
        read_trace(path)


def test_rejects_binary_header(tmp_path):
    path = tmp_path / "bin.trace"
    path.write_bytes(b"PIMTRACE\n\xff\xfe\x80\n")
    with pytest.raises(TraceFormatError):
        read_trace(path)


def test_truncated_column_names_the_shortfall(tmp_path):
    buffer = generate_random_trace(100, n_pes=2, seed=1)
    path = tmp_path / "cut.trace"
    write_trace(buffer, path)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - 4])
    with pytest.raises(TraceFormatError, match="truncated"):
        read_trace(path)


# ---------------------------------------------------------------------------
# The chunked container (PIMTRACEC).


def test_chunked_roundtrip_and_sniffing(tmp_path):
    buffer = generate_random_trace(5_000, n_pes=4, seed=11)
    path = tmp_path / "c.trace"
    refs = write_trace_chunked(buffer, path, chunk_refs=700)
    assert refs == len(buffer)
    assert is_chunked_trace(path)
    # read_trace sniffs the magic and loads the chunked file whole.
    loaded = read_trace(path)
    assert loaded.n_pes == buffer.n_pes
    assert list(loaded) == list(buffer)


def test_chunked_iteration_yields_bounded_chunks(tmp_path):
    buffer = generate_random_trace(5_000, n_pes=4, seed=3)
    path = tmp_path / "c.trace"
    write_trace_chunked(buffer, path, chunk_refs=700)
    chunks = list(iter_trace_chunks(path))
    assert all(len(chunk) <= 700 for chunk in chunks)
    assert sum(len(chunk) for chunk in chunks) == len(buffer)
    rebuilt = [row for chunk in chunks for row in chunk]
    assert rebuilt == list(buffer)


def test_chunked_writer_streams_a_generator(tmp_path):
    # The writer never needs the whole trace: a generator of chunk
    # buffers is written as-is, one chunk at a time.
    buffer = generate_random_trace(2_000, n_pes=2, seed=9)

    def chunks():
        for start in range(0, len(buffer), 512):
            yield buffer.slice(start, min(start + 512, len(buffer)))

    path = tmp_path / "gen.trace"
    assert write_trace_chunked(chunks(), path) == len(buffer)
    assert list(read_trace(path)) == list(buffer)


def test_chunked_empty_roundtrip(tmp_path):
    path = tmp_path / "empty.trace"
    assert write_trace_chunked(iter(()), path, n_pes=5) == 0
    assert is_chunked_trace(path)
    loaded = read_trace(path)
    assert loaded.n_pes == 5
    assert len(loaded) == 0
    assert list(iter_trace_chunks(path)) == []


def test_flat_file_is_not_chunked(tmp_path):
    buffer = generate_random_trace(100, n_pes=2, seed=1)
    path = tmp_path / "flat.trace"
    write_trace(buffer, path)
    assert not is_chunked_trace(path)


def test_chunked_missing_end_marker_is_diagnosed(tmp_path):
    buffer = generate_random_trace(1_500, n_pes=2, seed=2).slice(0, 1_400)
    path = tmp_path / "noend.trace"
    write_trace_chunked(buffer, path, chunk_refs=700)
    raw = path.read_bytes()
    # Drop the trailing "E <chunks> <refs>\n" line only: every chunk is
    # intact, so the error must say the end marker is missing.
    cut = raw.rfind(b"E ")
    path.write_bytes(raw[:cut])
    with pytest.raises(TraceFormatError, match="end marker") as info:
        read_trace(path)
    assert info.value.byte_offset == cut
    assert info.value.chunk_index == 2


def test_chunked_end_marker_count_mismatch(tmp_path):
    buffer = generate_random_trace(1_500, n_pes=2, seed=2).slice(0, 1_400)
    path = tmp_path / "miscount.trace"
    write_trace_chunked(buffer, path, chunk_refs=700)
    raw = path.read_bytes()
    path.write_bytes(raw.replace(b"E 2 1400", b"E 2 1399"))
    with pytest.raises(TraceFormatError, match="end marker"):
        read_trace(path)


# ---------------------------------------------------------------------------
# Hypothesis properties.

_ref = st.tuples(
    st.integers(0, 7),  # pe
    st.sampled_from(sorted(Op)),  # op
    st.sampled_from(sorted(Area)),  # area
    st.integers(0, 2**40),  # address
    st.sampled_from([0, 1]),  # flags
)


def _buffer_from(refs, n_pes=8):
    buffer = TraceBuffer(n_pes=n_pes)
    for pe, op, area, addr, flags in refs:
        buffer.append(pe, op, area, addr, flags)
    return buffer


@settings(max_examples=60, deadline=None)
@given(refs=st.lists(_ref, max_size=200), n_pes=st.integers(1, 8))
def test_property_roundtrip_identity(tmp_path_factory, refs, n_pes):
    buffer = _buffer_from(refs, n_pes=n_pes)
    path = tmp_path_factory.mktemp("io") / "prop.trace"
    write_trace(buffer, path)
    loaded = read_trace(path)
    assert loaded.n_pes == buffer.n_pes
    assert list(loaded) == list(buffer)


@settings(max_examples=40, deadline=None)
@given(refs=st.lists(_ref, min_size=1, max_size=120))
def test_property_foreign_endian_roundtrip(tmp_path_factory, refs):
    # Fabricate the byte-for-byte file a foreign-endian producer would
    # have written: multi-byte columns byteswapped, its byte order in
    # the header.  The reader must reconstruct the original references.
    buffer = _buffer_from(refs)
    path = tmp_path_factory.mktemp("io") / "native.trace"
    write_trace(buffer, path)
    foreign = {"little": "big", "big": "little"}[sys.byteorder]
    raw = path.read_bytes().replace(
        f" {sys.byteorder} ".encode("ascii"), f" {foreign} ".encode("ascii"), 1
    )
    addr_col = buffer.columns()[3]
    swapped = array("q", addr_col)
    swapped.byteswap()
    raw = raw.replace(addr_col.tobytes(), swapped.tobytes(), 1)
    foreign_path = tmp_path_factory.mktemp("io") / "foreign.trace"
    foreign_path.write_bytes(raw)
    assert list(read_trace(foreign_path)) == list(buffer)


@settings(max_examples=60, deadline=None)
@given(
    refs=st.lists(_ref, min_size=1, max_size=120),
    chunk_refs=st.integers(1, 40),
)
def test_property_chunked_roundtrip_identity(
    tmp_path_factory, refs, chunk_refs
):
    buffer = _buffer_from(refs)
    path = tmp_path_factory.mktemp("io") / "prop.trace"
    assert write_trace_chunked(buffer, path, chunk_refs=chunk_refs) == len(
        buffer
    )
    assert list(read_trace(path)) == list(buffer)
    streamed = [row for chunk in iter_trace_chunks(path) for row in chunk]
    assert streamed == list(buffer)


@settings(max_examples=80, deadline=None)
@given(
    refs=st.lists(_ref, min_size=1, max_size=60),
    chunk_refs=st.integers(1, 16),
    cut=st.integers(0, 10**9),
)
def test_property_chunked_truncation_carries_offset_and_chunk(
    tmp_path_factory, refs, chunk_refs, cut
):
    # Truncating a chunked trace at any byte past the magic (except the
    # final newline, which is cosmetic) raises TraceFormatError carrying
    # the byte offset of the failure — and, once the header has parsed,
    # the index of the chunk being read.
    buffer = _buffer_from(refs)
    path = tmp_path_factory.mktemp("io") / "whole.trace"
    write_trace_chunked(buffer, path, chunk_refs=chunk_refs)
    raw = path.read_bytes()
    magic_end = raw.index(b"\n") + 1
    header_end = raw.index(b"\n", magic_end) + 1
    cut = magic_end + cut % (len(raw) - 1 - magic_end)
    short = tmp_path_factory.mktemp("io") / "short.trace"
    short.write_bytes(raw[:cut])
    with pytest.raises(TraceFormatError) as info:
        list(iter_trace_chunks(short))
    assert info.value.byte_offset is not None
    assert 0 <= info.value.byte_offset <= cut
    if cut >= header_end:
        assert info.value.chunk_index is not None


@settings(max_examples=80, deadline=None)
@given(
    refs=st.lists(_ref, min_size=1, max_size=60),
    cut=st.integers(0, 10**9),
    data=st.data(),
)
def test_property_truncation_always_raises_trace_format_error(
    tmp_path_factory, refs, cut, data
):
    # Any strict prefix of a non-empty trace file is rejected with
    # TraceFormatError — never a raw EOFError, UnicodeDecodeError or
    # ValueError leaking from the parser internals.
    buffer = _buffer_from(refs)
    path = tmp_path_factory.mktemp("io") / "whole.trace"
    write_trace(buffer, path)
    raw = path.read_bytes()
    cut = cut % len(raw)  # strict prefix: 0 <= cut < len(raw)
    short = tmp_path_factory.mktemp("io") / "short.trace"
    short.write_bytes(raw[:cut])
    with pytest.raises(TraceFormatError):
        read_trace(short)
