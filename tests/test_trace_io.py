"""Trace file round-trip tests."""

import sys
from array import array

import pytest

from repro.trace.buffer import TraceBuffer
from repro.trace.events import Area, Op
from repro.trace.io import TraceFormatError, read_trace, write_trace
from repro.trace.synthetic import generate_random_trace


def test_roundtrip_empty(tmp_path):
    buffer = TraceBuffer(n_pes=3)
    path = tmp_path / "empty.trace"
    write_trace(buffer, path)
    loaded = read_trace(path)
    assert loaded.n_pes == 3
    assert len(loaded) == 0


def test_roundtrip_content(tmp_path):
    buffer = generate_random_trace(5000, n_pes=4, seed=11)
    path = tmp_path / "t.trace"
    write_trace(buffer, path)
    loaded = read_trace(path)
    assert len(loaded) == len(buffer)
    assert list(loaded) == list(buffer)


def test_rejects_garbage(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_bytes(b"NOTATRACE\nstuff")
    with pytest.raises(TraceFormatError):
        read_trace(path)


def test_rejects_truncated_header(tmp_path):
    path = tmp_path / "trunc.trace"
    path.write_bytes(b"PIMTRACE\n1 little\n")
    with pytest.raises(TraceFormatError):
        read_trace(path)


def test_foreign_endian_roundtrip(tmp_path):
    # Fabricate the file a foreign-endian machine would have written:
    # same header/typecodes, multi-byte columns byteswapped, and the
    # opposite byte order recorded in the header.
    buffer = generate_random_trace(500, n_pes=4, seed=7)
    path = tmp_path / "native.trace"
    write_trace(buffer, path)
    foreign = {"little": "big", "big": "little"}[sys.byteorder]
    raw = path.read_bytes().replace(
        f" {sys.byteorder} ".encode("ascii"), f" {foreign} ".encode("ascii"), 1
    )
    addr_col = buffer.columns()[3]
    swapped = array("q", addr_col)
    swapped.byteswap()
    raw = raw.replace(addr_col.tobytes(), swapped.tobytes(), 1)
    foreign_path = tmp_path / "foreign.trace"
    foreign_path.write_bytes(raw)

    loaded = read_trace(foreign_path)
    assert list(loaded) == list(buffer)


def test_rejects_unknown_byteorder(tmp_path):
    buffer = TraceBuffer()
    buffer.append(0, Op.R, Area.HEAP, 1)
    path = tmp_path / "weird.trace"
    write_trace(buffer, path)
    raw = path.read_bytes().replace(
        f" {sys.byteorder} ".encode("ascii"), b" middle ", 1
    )
    path.write_bytes(raw)
    with pytest.raises(TraceFormatError, match="byte order"):
        read_trace(path)


def test_rejects_bad_version(tmp_path):
    buffer = TraceBuffer()
    buffer.append(0, Op.R, Area.HEAP, 1)
    path = tmp_path / "v.trace"
    write_trace(buffer, path)
    data = path.read_bytes().replace(b"\n1 ", b"\n9 ", 1)
    path.write_bytes(data)
    with pytest.raises(TraceFormatError):
        read_trace(path)
