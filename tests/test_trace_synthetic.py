"""Tests for the synthetic trace generators."""

from collections import Counter

from repro.core.config import OptimizationConfig, SimulationConfig
from repro.core.replay import replay
from repro.trace.events import Area, Op
from repro.trace.synthetic import (
    AuroraTraceConfig,
    generate_aurora_trace,
    generate_random_trace,
)


class TestAuroraTrace:
    def test_deterministic_per_seed(self):
        config = AuroraTraceConfig(n_pes=2, steps_per_pe=100)
        a = generate_aurora_trace(config)
        b = generate_aurora_trace(config)
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        a = generate_aurora_trace(AuroraTraceConfig(n_pes=2, steps_per_pe=100, seed=1))
        b = generate_aurora_trace(AuroraTraceConfig(n_pes=2, steps_per_pe=100, seed=2))
        assert list(a) != list(b)

    def test_prolog_like_mix(self):
        """High write ratio (Tick reports ~47 % data writes for Prolog)
        and a meaningful lock share."""
        trace = generate_aurora_trace(AuroraTraceConfig(n_pes=4, steps_per_pe=500))
        ops = Counter(op for _, op, _, _, _ in trace)
        data_total = sum(
            count for (op), count in ops.items()
        ) - sum(1 for _, op, area, _, _ in trace if area == Area.INSTRUCTION)
        writes = ops[Op.W] + ops[Op.DW] + ops[Op.UW]
        assert 0.25 < writes / data_total < 0.7
        assert ops[Op.LR] > 0

    def test_lock_pairs_are_balanced(self):
        trace = generate_aurora_trace(AuroraTraceConfig(n_pes=4, steps_per_pe=300))
        ops = Counter(op for _, op, _, _, _ in trace)
        assert ops[Op.LR] == ops[Op.UW] + ops[Op.U]

    def test_optimizations_help_aurora(self):
        """The paper's transfer claim: the commands help OR-parallel
        Prolog workloads too."""
        trace = generate_aurora_trace(AuroraTraceConfig(n_pes=4, steps_per_pe=400))
        on = replay(trace, SimulationConfig(opts=OptimizationConfig.all()))
        off = replay(trace, SimulationConfig(opts=OptimizationConfig.none()))
        assert on.bus_cycles_total < 0.8 * off.bus_cycles_total


class TestRandomTrace:
    def test_requested_length(self):
        trace = generate_random_trace(1000, n_pes=4, seed=0)
        assert len(trace) >= 1000  # plus any drained locks

    def test_replays_without_blocking(self):
        trace = generate_random_trace(2000, n_pes=4, seed=5)
        stats = replay(trace, SimulationConfig(track_data=True))
        assert stats.total_refs == len(trace)

    def test_locks_are_well_formed(self):
        trace = generate_random_trace(3000, n_pes=4, seed=9)
        held = set()
        for pe, op, area, addr, _ in trace:
            if op == Op.LR:
                assert addr not in held
                held.add(addr)
            elif op in (Op.UW, Op.U):
                assert addr in held
                held.discard(addr)
        assert not held  # all drained at the end
