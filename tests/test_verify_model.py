"""The protocol model checker (repro.verify.model).

Positive direction: every registered protocol's reachable state space is
clean under the default 2-PE/1-block universe.  Negative direction: two
bug classes that *pass* (or bypass) the spec's eager validation are
caught by exhaustive enumeration with a minimal counterexample — a
silent store in S (validation only restricts silent stores in dirty
states) and a dirty supplier row without copyback (injected by mutating
the supplier dict post-construction, as the demo spec does).
"""

import dataclasses

import pytest

from repro.core.protocol import get_protocol, protocol_names, temporarily_register
from repro.core.protocol.spec import StoreRule, SupplierRule
from repro.core.states import CacheState
from repro.trace.events import Op
from repro.verify import (
    CheckResult,
    ModelCheckOptions,
    check_protocol,
)
from repro.verify.model import broken_demo_spec


# ---------------------------------------------------------------------------
# Clean protocols.


@pytest.mark.parametrize("protocol", protocol_names())
def test_registered_protocols_are_clean(protocol):
    result = check_protocol(protocol)
    assert result.clean, result.render()
    assert result.complete
    assert result.counterexample is None
    assert result.states > 1
    assert result.transitions > result.states


def test_three_pe_universe_is_clean():
    # Three sharers reach states (two remote copies on an invalidation)
    # that two PEs cannot; keep the op set small so the closure stays
    # quick.
    options = ModelCheckOptions(n_pes=3, ops=(Op.R, Op.W, Op.DW, Op.RP))
    result = check_protocol("pim", options)
    assert result.clean, result.render()
    assert result.complete


def test_two_block_universe_forces_evictions():
    # Two blocks in a one-set, one-way cache: every second block access
    # evicts, covering the victim copy-back paths.
    options = ModelCheckOptions(
        n_blocks=2, ops=(Op.R, Op.W, Op.DW), max_states=50_000
    )
    result = check_protocol("pim", options)
    assert result.clean, result.render()
    assert result.complete


def test_max_states_truncation_is_reported():
    result = check_protocol("pim", ModelCheckOptions(max_states=10))
    assert result.clean
    assert not result.complete
    assert "truncated" in result.render()


# ---------------------------------------------------------------------------
# Broken specs are caught with counterexamples.


def test_demo_spec_dirty_loss_counterexample():
    result = check_protocol(broken_demo_spec())
    assert not result.clean
    ce = result.counterexample
    assert ce is not None
    assert ce.violation.invariant == "dirty-loss"
    # Minimal scenario: a write creates the dirty copy, a remote read
    # consumes it through the broken supplier row.  BFS order guarantees
    # no shorter sequence exists.
    assert len(ce.steps) == 2
    rendered = result.render()
    assert "counterexample (dirty-loss)" in rendered
    assert "state after the final step" in rendered


def test_demo_spec_does_not_pollute_registry():
    before = set(protocol_names())
    check_protocol(broken_demo_spec())
    assert set(protocol_names()) == before
    # The real pim spec's (shared-by-identity) tables were not mutated.
    pim = get_protocol("pim")
    assert pim.supplier[CacheState.EM].copyback or (
        pim.supplier[CacheState.EM].next_state
        in (CacheState.SM, CacheState.EM)
    )


def test_silent_store_in_shared_state_caught():
    # A silent store hit in S skips the invalidation broadcast.  The
    # spec validator cannot reject it (S is clean, so no copy-back duty
    # argument applies), but the checker catches the stale remote copy.
    base = get_protocol("pim")
    spec = dataclasses.replace(
        base,
        name="pim_silent_s",
        store={**base.store, CacheState.S: StoreRule(next_state=CacheState.SM)},
    )
    result = check_protocol(spec)
    assert not result.clean
    assert result.counterexample.violation.invariant in (
        "data-value", "single-writer",
    )


def test_counterexample_replays_on_spec_object():
    # check_protocol accepts the spec object directly and reports under
    # its name.
    spec = broken_demo_spec(name="pim_broken_again")
    result = check_protocol(spec)
    assert result.protocol == "pim_broken_again"
    assert not result.clean


def test_broken_spec_as_dict_round_trips():
    result = check_protocol(broken_demo_spec())
    record = result.as_dict()
    assert record["clean"] is False
    assert record["counterexample"]["invariant"] == "dirty-loss"
    assert record["counterexample"]["steps"]
    assert record["ops"] == [
        "R", "W", "DW", "ER", "RP", "LR", "UW", "U",
    ]


def test_temporarily_registered_spec_checked_under_its_name():
    spec = broken_demo_spec(name="pim_supplier_drop")
    with temporarily_register(spec):
        result = check_protocol("pim_supplier_drop")
    assert not result.clean
    assert "pim_supplier_drop" not in protocol_names()


# ---------------------------------------------------------------------------
# Satellite: the spec validator itself rejects the constructible form of
# the dirty-loss bug eagerly, at construction time.


def test_validation_rejects_dirty_supplier_drop_at_construction():
    base = get_protocol("pim")
    with pytest.raises(ValueError, match="without copyback"):
        dataclasses.replace(
            base,
            name="pim_invalid",
            supplier={
                **base.supplier,
                CacheState.EM: SupplierRule(CacheState.S, copyback=False),
            },
        )


def test_validation_rejects_dirty_sm_supplier_drop():
    base = get_protocol("pim")
    with pytest.raises(ValueError, match="without copyback"):
        dataclasses.replace(
            base,
            name="pim_invalid_sm",
            supplier={
                **base.supplier,
                CacheState.SM: SupplierRule(CacheState.S, copyback=False),
            },
        )


def test_validation_accepts_dirty_supplier_with_copyback():
    base = get_protocol("pim")
    spec = dataclasses.replace(
        base,
        name="pim_illinois_style",
        supplier={
            **base.supplier,
            CacheState.EM: SupplierRule(CacheState.S, copyback=True),
            CacheState.SM: SupplierRule(CacheState.S, copyback=True),
        },
    )
    # Not just constructible — actually coherent.
    result = check_protocol(
        spec, ModelCheckOptions(ops=(Op.R, Op.W, Op.DW))
    )
    assert result.clean, result.render()


# ---------------------------------------------------------------------------
# Options plumbing.


def test_options_word_universe():
    options = ModelCheckOptions(n_blocks=2, block_words=2)
    words = options.words()
    assert len(words) == 4
    assert words[1] - words[0] == 1


def test_result_render_mentions_bounds():
    result = CheckResult(
        protocol="pim", clean=True, states=7, transitions=9, complete=True
    )
    rendered = result.render()
    assert "pim: clean" in rendered
    assert "2 PEs" in rendered
