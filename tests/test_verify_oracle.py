"""The differential fuzzing oracle (repro.verify.oracle / shrink).

The flat word-granularity memory is the trivially correct reference; a
fuzz case runs one contract trace through every execution path (system,
fast kernel, checked replay, sharded + interleaved cluster replay) and
demands value and counter agreement.  The negative test registers the
deliberately broken demo spec and checks the fuzzer finds *and shrinks*
the divergence end to end.
"""

import pytest

from repro.core.config import CacheConfig, SimulationConfig
from repro.core.protocol import temporarily_register
from repro.trace.buffer import TraceBuffer
from repro.trace.events import Area, Op
from repro.trace.synthetic import generate_contract_trace
from repro.verify import (
    Divergence,
    FlatMemory,
    run_case,
    run_fuzz,
    shrink_trace,
    subset,
    value_for,
)
from repro.verify.model import broken_demo_spec


# ---------------------------------------------------------------------------
# The flat reference model.


def test_flat_memory_defaults_to_zero():
    memory = FlatMemory()
    assert memory.read(0x123) == 0
    memory.write(0x123, 7)
    assert memory.read(0x123) == 7
    assert len(memory) == 1


def test_value_for_is_distinct_and_nonzero():
    values = [value_for(i) for i in range(100)]
    assert 0 not in values
    assert len(set(values)) == len(values)


# ---------------------------------------------------------------------------
# The contract trace generator keeps the software contracts.


def test_contract_trace_lock_consistency():
    trace = generate_contract_trace(4_000, n_pes=4, seed=3)
    held = {}  # address -> pe
    for pe, op, area, addr, flags in trace:
        if op == Op.LR:
            assert addr not in held, "LR on an already-held lock"
            held[addr] = pe
        elif op in (Op.UW, Op.U):
            assert held.get(addr) == pe, "unlock of a lock not held"
            del held[addr]
    assert not held, "trace ended with locks still held"


def test_contract_trace_is_deterministic():
    a = generate_contract_trace(1_000, n_pes=4, seed=9)
    b = generate_contract_trace(1_000, n_pes=4, seed=9)
    assert list(a) == list(b)
    c = generate_contract_trace(1_000, n_pes=4, seed=10)
    assert list(a) != list(c)


def test_contract_trace_never_rereads_purged_blocks():
    from repro.core.config import OptimizationConfig

    opts = OptimizationConfig.all()
    block_words = 4
    trace = generate_contract_trace(
        4_000, n_pes=4, seed=5, block_words=block_words, opts=opts
    )
    dead = set()
    for pe, op, area, addr, flags in trace:
        block = addr // block_words
        assert block not in dead, "reference to a retired (purged) block"
        if opts.honours(op, area) and (
            op == Op.RP
            or (op == Op.ER and addr % block_words == block_words - 1)
        ):
            dead.add(block)


# ---------------------------------------------------------------------------
# run_case: all paths agree on a healthy protocol.


def _flat_paths() -> int:
    """Value pass + interpreted kernel + checkpointed resume + checked
    replay, plus the generated kernel on hosts that can run it."""
    from repro.core.protocol import codegen

    return 4 + (1 if codegen.available() else 0)


def test_run_case_counts_every_path():
    trace = generate_contract_trace(600, n_pes=4, seed=1)
    config = SimulationConfig()
    refs = run_case(trace, config, n_pes=4, cluster_counts=(1, 2))
    # Paths: the flat paths, K=1 sharded + interleaved (2x), K=2
    # sharded + interleaved + value pass (3x).
    assert refs == (_flat_paths() + 5) * len(trace)


def test_run_case_skips_indivisible_cluster_counts():
    trace = generate_contract_trace(300, n_pes=4, seed=2)
    refs = run_case(trace, SimulationConfig(), n_pes=4, cluster_counts=(3,))
    # 4 PEs don't shard into 3 clusters: only the flat paths run.
    assert refs == _flat_paths() * len(trace)


def test_divergence_message_carries_kind_and_index():
    divergence = Divergence("value", "mismatch", index=41)
    assert "[value]" in str(divergence)
    assert "41" in str(divergence)


# ---------------------------------------------------------------------------
# Trace shrinking.


def _trace_with_addresses(addresses):
    buffer = TraceBuffer(n_pes=2)
    for i, addr in enumerate(addresses):
        buffer.append(i % 2, Op.R, Area.HEAP, addr)
    return buffer


def test_subset_picks_rows():
    buffer = _trace_with_addresses(range(10))
    picked = subset(buffer, [2, 5, 7])
    assert len(picked) == 3
    assert [row[3] for row in picked] == [2, 5, 7]
    assert picked.n_pes == buffer.n_pes


def test_shrink_reduces_to_the_failing_pair():
    # Synthetic failure: the trace "fails" iff it still contains both
    # address 17 and address 91 — ddmin must reduce 200 references to
    # exactly those two.
    addresses = list(range(200))
    addresses[60] = 17
    addresses[140] = 91
    buffer = _trace_with_addresses(addresses)

    def still_fails(candidate):
        seen = {row[3] for row in candidate}
        return 17 in seen and 91 in seen

    reduced = shrink_trace(buffer, still_fails)
    assert sorted(row[3] for row in reduced) == [17, 91]


def test_shrink_respects_eval_budget():
    buffer = _trace_with_addresses(range(64))
    evals = []

    def still_fails(candidate):
        evals.append(len(candidate))
        return 63 in {row[3] for row in candidate}

    shrink_trace(buffer, still_fails, max_evals=5)
    assert len(evals) <= 5


def test_shrink_returns_original_when_nothing_reproduces():
    buffer = _trace_with_addresses(range(8))
    reduced = shrink_trace(buffer, lambda candidate: False, max_evals=32)
    assert list(reduced) == list(buffer)


# ---------------------------------------------------------------------------
# The fuzz driver.


def test_fixed_seed_fuzz_is_clean():
    report = run_fuzz(seed=0, budget=4_000, refs_per_case=1_000)
    assert report.clean, report.render()
    assert report.refs_total >= 4_000
    assert all(case.ok for case in report.cases)
    assert "clean" in report.render()
    record = report.as_dict()
    assert record["clean"] is True
    assert record["refs_total"] == report.refs_total


def test_fuzz_is_reproducible():
    a = run_fuzz(seed=7, budget=2_000, refs_per_case=500)
    b = run_fuzz(seed=7, budget=2_000, refs_per_case=500)
    assert a.as_dict() == b.as_dict()


@pytest.mark.slow
def test_fuzzer_catches_and_shrinks_broken_protocol():
    # End to end: the broken demo spec survives until its dirty copy is
    # evicted unsynchronized — the small-cache variant makes that
    # constant, the flat model sees the stale value, and the shrinker
    # cuts the trace to a screenful.
    spec = broken_demo_spec(name="pim_broken_fuzz")
    with temporarily_register(spec):
        report = run_fuzz(
            seed=0,
            budget=6_000,
            refs_per_case=2_000,
            protocols=["pim_broken_fuzz"],
            max_shrink_evals=96,
        )
    assert not report.clean
    bad = report.divergences[0]
    assert bad.kind in ("value", "kernel-stats", "checked-stats")
    assert bad.detail
    assert bad.shrunk_refs, "divergent case was not shrunk"
    assert len(bad.shrunk_refs) < 100
    rendered = report.render()
    assert "DIVERGED" in rendered


@pytest.mark.slow
def test_run_case_raises_divergence_on_broken_protocol():
    spec = broken_demo_spec(name="pim_broken_case")
    with temporarily_register(spec):
        config = SimulationConfig(
            protocol="pim_broken_case",
            cache=CacheConfig(block_words=4, n_sets=4, associativity=1),
        )
        trace = generate_contract_trace(
            2_000, n_pes=4, seed=7919, opts=config.opts
        )
        with pytest.raises(Divergence):
            run_case(trace, config, n_pes=4)

# ---------------------------------------------------------------------------
# The speculative (lazypim) oracle rotation.


def test_lazypim_fuzz_rotation_leads_with_a_forced_conflict():
    from repro.verify import run_fuzz as fuzz

    report = fuzz(
        seed=0,
        budget=2_000,
        refs_per_case=1_000,
        protocols=["pim"],
        modes=("lazypim",),
    )
    assert report.clean, report.render()
    # The conflict variant is ordered first so ANY budget exercises at
    # least one real rollback (run_lazypim_case enforces it happened).
    first = report.cases[0]
    assert first.mode == "lazypim"
    assert first.variant == "conflict"
    assert "lazypim-conflict" in report.render()
    assert report.as_dict()["cases"][0]["mode"] == "lazypim"


def test_lazypim_fuzz_is_reproducible():
    from repro.verify import run_fuzz as fuzz

    a = fuzz(seed=5, budget=2_000, refs_per_case=500,
             protocols=["pim"], modes=("lazypim",))
    b = fuzz(seed=5, budget=2_000, refs_per_case=500,
             protocols=["pim"], modes=("lazypim",))
    assert a.as_dict() == b.as_dict()


def test_run_lazypim_case_no_rollback_diverges_when_required():
    from repro.verify import Divergence as Div, run_lazypim_case

    # Per-PE private blocks: every batch commits, so demanding a
    # rollback must fail loudly — the gate that keeps the
    # forced-conflict trace generator honest.
    trace = TraceBuffer(n_pes=2)
    for i in range(64):
        pe = i % 2
        trace.append(pe, Op.W if i % 4 == 0 else Op.R, Area.HEAP,
                     0x10000000 + pe * 256 + (i // 2) % 32)
    with pytest.raises(Div, match="no-rollback"):
        run_lazypim_case(
            trace,
            SimulationConfig(),
            n_pes=2,
            cluster_counts=(1,),
            require_rollback=True,
        )


def test_fuzz_rejects_unknown_mode():
    with pytest.raises(ValueError):
        run_fuzz(seed=0, budget=500, refs_per_case=500, modes=("eager",))
